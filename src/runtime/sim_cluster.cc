#include "runtime/sim_cluster.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>

#include "common/logging.h"
#include "pstm/steps.h"
#include "pstm/weight.h"

namespace graphdance {

namespace {
constexpr size_t kFrameHeaderBytes = 64;
constexpr uint64_t kNlcCombineWindowNs = 4'000;

/// Merges the legacy single-knob injector into the structured fault plan.
FaultPlan EffectivePlan(const ClusterConfig& config) {
  FaultPlan plan = config.fault;
  if (config.fault_drop_remote_message > 0) {
    plan.DropNth(config.fault_drop_remote_message);
  }
  return plan;
}
}  // namespace

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAsync:
      return "graphdance";
    case EngineKind::kBsp:
      return "bsp";
    case EngineKind::kShared:
      return "non-partitioned";
    case EngineKind::kGaiaSim:
      return "gaia-sim";
    case EngineKind::kBanyanSim:
      return "banyan-sim";
  }
  return "?";
}

EngineTuning EngineTuning::For(EngineKind kind) {
  EngineTuning t;
  switch (kind) {
    case EngineKind::kAsync:
    case EngineKind::kBsp:
      break;
    case EngineKind::kShared:
      t.shared_state = true;
      break;
    case EngineKind::kGaiaSim:
      // GAIA instantiates every dataflow operator in every worker and runs
      // final aggregation in a centralized worker (paper §V-B).
      t.per_task_sched_extra_ns = 220;
      t.per_worker_setup_ns = 5'000;
      t.centralized_agg = true;
      break;
    case EngineKind::kBanyanSim:
      // Banyan's scoped dataflow: cheaper per-task control than GAIA but
      // still per-worker operator instances.
      t.per_task_sched_extra_ns = 90;
      t.per_worker_setup_ns = 3'000;
      break;
  }
  return t;
}

// NetStats moved to obs/metrics.{h,cc}: the canonical instance is owned by
// the metrics registry and net_stats() is a thin view into it.

// ---------------------------------------------------------------------------
// ExecContext: binds step execution to (cluster, worker, partition, query).
// ---------------------------------------------------------------------------

class ExecContext final : public StepContext {
 public:
  enum class Mode {
    kAsync,     // live asynchronous execution
    kFinalize,  // OnFinalize: emissions buffered for weight assignment
    kBsp,       // superstep execution: emissions buffered, weights ignored
  };

  ExecContext(SimCluster* cluster, SimCluster::Worker* worker,
              SimCluster::QueryState* qs, PartitionId partition, Mode mode,
              SimTime* clock)
      : cluster_(cluster),
        worker_(worker),
        qs_(qs),
        partition_(partition),
        mode_(mode),
        clock_(clock) {
    if (worker_ != nullptr) set_scratch(&worker_->scratch);
  }

  const PartitionStore& store() const override {
    return cluster_->graph_->partition(partition_);
  }
  MemoTable& memo() override { return cluster_->memos_[partition_]; }
  const Partitioner& partitioner() const override {
    return cluster_->graph_->partitioner();
  }
  const Schema& schema() const override { return cluster_->graph_->schema(); }
  uint64_t query_id() const override { return qs_->id; }
  Timestamp read_ts() const override { return qs_->read_ts; }
  Rng& rng() override { return worker_->rng; }

  void Charge(CostKind kind, uint64_t count) override;
  using StepContext::Charge;

  // Pure observation (no time charge, no events): per-step traverser counts
  // for the metrics registry.
  void CountTraverser(StepKind kind) override {
    cluster_->metrics_.worker(worker_->id)
        .steps_in[static_cast<uint32_t>(kind)]++;
  }

  // Snapshot-isolation audit (pure observation, see step.h): with a harness
  // attached, steps report the raw stamps of every edge their visibility
  // scan returned. The mutation smoke hook corrupts the stamp here, BETWEEN
  // the scan and the observation, mirroring MaybeCorruptWeightCell.
  bool observe_edges() const override { return cluster_->check_ != nullptr; }
  void ObserveEdge(Timestamp create_ts, Timestamp delete_ts) override {
    if (cluster_->check_ == nullptr) return;
    cluster_->check_->MaybeCorruptVisibility(&create_ts, qs_->read_ts);
    cluster_->check_->OnEdgeObserved(qs_->id, qs_->attempt, qs_->read_ts,
                                     create_ts, delete_ts, *clock_);
  }

  void Emit(Traverser t) override {
    if (mode_ == Mode::kAsync) {
      if (track_weights_) emitted_weight_ += t.weight;
      cluster_->EmitTraverser(*worker_, *qs_, partition_, std::move(t));
    } else {
      emitted_.push_back(std::move(t));
    }
  }

  void Finish(uint32_t scope, Weight w) override;

  void EmitRow(Row row, uint32_t count) override;
  using StepContext::EmitRow;

  void SendCollect(uint32_t step_id, std::vector<uint8_t> payload) override;

  std::vector<Traverser>& emitted() { return emitted_; }
  SimTime* clock() { return clock_; }

  /// Per-task Z_2^64 bookkeeping for the weight-conservation checker: sums
  /// the weights this context emitted and finished so ExecuteTask can verify
  /// in == emitted + finished after the step runs. Off (and cost-free) when
  /// no checker is attached.
  void TrackWeights() { track_weights_ = true; }
  Weight emitted_weight() const { return emitted_weight_; }
  Weight finished_weight() const { return finished_weight_; }

 private:
  SimCluster* cluster_;
  SimCluster::Worker* worker_;
  SimCluster::QueryState* qs_;
  PartitionId partition_;
  Mode mode_;
  SimTime* clock_;
  std::vector<Traverser> emitted_;
  bool track_weights_ = false;
  Weight emitted_weight_ = 0;
  Weight finished_weight_ = 0;
};

void ExecContext::Charge(CostKind kind, uint64_t count) {
  cluster_->charge_counts_[static_cast<int>(kind)] += count;
  const CostModel& cost = cluster_->config_.cost;
  double ns = static_cast<double>(cost.Of(kind)) * static_cast<double>(count) /
              cluster_->config_.cpu_speedup;
  const bool data_access = kind == CostKind::kPerEdge ||
                           kind == CostKind::kPropAccess ||
                           kind == CostKind::kMemoOp;
  if (data_access) {
    if (cluster_->tuning_.shared_state) ns *= cost.numa_penalty;
    if (cluster_->swap_thrashing_) ns *= cluster_->config_.swap_penalty;
  }
  // Non-partitioned state is latched: memo accesses serialize on the node
  // lock, modelling inter-thread synchronization on shared query state.
  if (cluster_->tuning_.shared_state && kind == CostKind::kMemoOp) {
    SimTime& lock = cluster_->node_lock_busy_[worker_->node];
    SimTime start = std::max(*clock_, lock);
    *clock_ = start + cost.lock_acquire_ns + static_cast<SimTime>(ns);
    lock = *clock_;
    return;
  }
  *clock_ += static_cast<SimTime>(ns);
}

void ExecContext::Finish(uint32_t scope, Weight w) {
  if (mode_ == Mode::kBsp) return;  // BSP detects quiescence via barriers
  if (track_weights_) finished_weight_ += w;
  cluster_->metrics_.worker(worker_->id).weight_finishes++;
  if (cluster_->check_ != nullptr) {
    cluster_->check_->OnWeightFinish(qs_->id, qs_->attempt, scope, w, *clock_);
  }
  if (cluster_->config_.weight_coalescing) {
    *clock_ += cluster_->config_.cost.weight_track_ns;
    Weight& cell = worker_->pending_weights[WeightKey(qs_->id, scope)];
    Weight before = cell;
    cell += w;
    if (cluster_->check_ != nullptr) {
      // The mutation smoke hook corrupts the cell here, BETWEEN the merge
      // and its observation, so OnWeightMerge sees exactly what later flows
      // into the coordinator's accumulator.
      cluster_->check_->MaybeCorruptWeightCell(&cell);
      cluster_->check_->OnWeightMerge(qs_->id, qs_->attempt, scope, before, w,
                                      cell, *clock_);
    }
    return;
  }
  cluster_->metrics_.worker(worker_->id).weight_reports++;
  // Uncoalesced: one report message per finished traverser (Fig. 10/11
  // ablation). Same-worker reports still charge the tracker.
  Message m;
  m.kind = MessageKind::kWeightReport;
  m.src_worker = worker_->id;
  m.dst_worker = qs_->coordinator;
  m.query_id = qs_->id;
  m.scope_id = scope;
  m.weight = w;
  if (qs_->coordinator == worker_->id) {
    if (cluster_->fault_active_) {
      // Symmetry with the remote branch: rows this worker announced via
      // rows_unreported must enter rows_expected even when the report is
      // handled locally, or rows_received would carry an unmatched surplus
      // that could mask a dropped remote row at the final-scope check.
      if (const uint32_t* rows = worker_->rows_unreported.Find(qs_->id)) {
        qs_->rows_expected += *rows;
        worker_->rows_unreported.Erase(qs_->id);
      }
    }
    cluster_->HandleWeight(*qs_, scope, w, *worker_);
  } else {
    if (cluster_->fault_active_) {
      if (const uint32_t* rows = worker_->rows_unreported.Find(qs_->id)) {
        m.row_delta = *rows;
        worker_->rows_unreported.Erase(qs_->id);
      }
    }
    cluster_->Charge(*worker_, CostKind::kMsgPack, 1);
    cluster_->Send(*worker_, std::move(m));
  }
}

void ExecContext::EmitRow(Row row, uint32_t count) {
  if (count == 0) return;
  if (mode_ == Mode::kBsp) {
    for (uint32_t i = 1; i < count; ++i) qs_->result.rows.push_back(row);
    qs_->result.rows.push_back(std::move(row));
    cluster_->metrics_.net().messages_by_kind[static_cast<int>(MessageKind::kResultRow)] +=
        count;
    return;
  }
  if (qs_->coordinator == worker_->id) {
    // Coordinator-local rows never cross the wire; count them in both row
    // ledgers so rows_received can never outrun rows_expected and mask a
    // dropped remote row (the two counters stay symmetric by construction).
    if (cluster_->fault_active_) {
      qs_->rows_expected += count;
      qs_->rows_received += count;
    }
    for (uint32_t i = 1; i < count; ++i) qs_->result.rows.push_back(row);
    qs_->result.rows.push_back(std::move(row));
    cluster_->MaybeCancelOnLimit(*qs_, worker_->now);
    return;
  }
  ByteWriter out(cluster_->payload_pool_.Acquire(), 64);
  SerializeRow(row, &out);
  Message m;
  m.kind = MessageKind::kResultRow;
  m.src_worker = worker_->id;
  m.dst_worker = qs_->coordinator;
  m.query_id = qs_->id;
  // A bulked emit ships ONE message carrying the multiplicity; the
  // coordinator expands it and advances the row ledger by `count`, keeping
  // rows_expected/rows_received symmetric under faults (the whole batch is
  // lost or delivered atomically).
  m.tag = count;
  m.payload = out.Take();
  // Row-loss accounting: the count of rows sent remotely piggybacks on this
  // worker's next weight report (EmitStep always finishes the emitting
  // traverser's weight right after EmitRow, so a report will follow).
  if (cluster_->fault_active_) worker_->rows_unreported[qs_->id] += count;
  cluster_->Charge(*worker_, CostKind::kMsgPack, 1);
  cluster_->Send(*worker_, std::move(m));
}

void ExecContext::SendCollect(uint32_t step_id, std::vector<uint8_t> payload) {
  if (mode_ == Mode::kBsp) {
    // The BSP driver merges collects synchronously via the merge state.
    ByteReader reader(payload.data(), payload.size());
    qs_->plan->step(static_cast<uint16_t>(step_id)).OnCollect(&reader, &qs_->collect);
    qs_->collect.replies++;
    return;
  }
  Message m;
  m.kind = MessageKind::kCollectReply;
  m.src_worker = worker_->id;
  m.dst_worker = qs_->coordinator;
  m.query_id = qs_->id;
  m.tag = step_id;
  m.payload = std::move(payload);
  cluster_->Charge(*worker_, CostKind::kMsgPack, 1);
  if (qs_->coordinator == worker_->id) {
    cluster_->HandleCollectReply(*qs_, m, *worker_);
  } else {
    cluster_->Send(*worker_, std::move(m));
  }
}

// ---------------------------------------------------------------------------
// SimCluster
// ---------------------------------------------------------------------------

SimCluster::SimCluster(ClusterConfig config, std::shared_ptr<PartitionedGraph> graph)
    : config_(config),
      tuning_(EngineTuning::For(config.engine)),
      graph_(std::move(graph)),
      fault_(EffectivePlan(config)),
      rng_(config.seed) {
  // Exploration must be configured before the first Schedule() call (the
  // scripted fault events below enter the queue from the constructor), so
  // every event of the run is permuted/jittered under one seed.
  if (config_.explore.Active()) events_.ConfigureExploration(config_.explore);
  if (graph_->num_partitions() != config_.num_partitions()) {
    GD_ERROR("graph partition count (" + std::to_string(graph_->num_partitions()) +
             ") must equal cluster worker count (" +
             std::to_string(config_.num_partitions()) + ")");
    std::abort();
  }
  const uint32_t total = config_.total_workers();
  workers_.resize(total);
  memos_.resize(total);
  for (uint32_t w = 0; w < total; ++w) {
    workers_[w].id = w;
    workers_[w].node = NodeOfWorker(w);
    workers_[w].out.resize(config_.num_nodes);
    workers_[w].rng.Seed(config_.seed * 7919 + w + 1);
  }
  link_busy_.assign(static_cast<size_t>(config_.num_nodes) * config_.num_nodes, 0);
  egress_.resize(static_cast<size_t>(config_.num_nodes) * config_.num_nodes);
  metrics_.Init(total, config_.num_nodes);
  tracer_.set_enabled(config_.trace);
  if (tracer_.enabled()) {
    for (uint32_t n = 0; n < config_.num_nodes; ++n) {
      tracer_.Meta("process_name", n, 0, "node" + std::to_string(n));
    }
    for (uint32_t w = 0; w < total; ++w) {
      tracer_.Meta("thread_name", NodeOfWorker(w), w,
                   "worker" + std::to_string(w));
    }
  }
  node_lock_busy_.assign(config_.num_nodes, 0);
  node_rr_.assign(config_.num_nodes, 0);
  swap_thrashing_ =
      graph_->stats().raw_bytes / config_.num_nodes > config_.memory_cap_bytes;

  if (config_.qos.enabled) {
    qos_active_ = true;
    admission_ = std::make_unique<qos::AdmissionController>(config_.qos);
    link_credits_.assign(
        static_cast<size_t>(config_.num_nodes) * config_.num_nodes,
        qos::CreditMeter(config_.qos.link_credit_bytes));
  }
  // The spill manager is a refinement of the qos budgets; without qos there
  // is no budget to relieve, so the flag stays off (and every spill branch
  // stays untaken — byte-identical schedule).
  spill_active_ = qos_active_ && config_.qos.spill.enabled;

  fault_active_ = fault_.active();
  recovery_active_ = fault_active_ && config_.fault_recovery;
  if (fault_active_) {
    pair_seq_.assign(static_cast<size_t>(total) * total, 0);
    // Time-based scripted events are part of the DES schedule from t=0;
    // message-level faults are consulted per remote send instead.
    for (const FaultEvent& ev : fault_.plan().scripted) {
      switch (ev.kind) {
        case FaultKind::kCrashWorker:
          events_.Schedule(ev.at, [this, ev](SimTime t) {
            CrashWorkerNow(ev.worker, t, ev.duration_ns);
          });
          break;
        case FaultKind::kDegradeLink:
          events_.Schedule(ev.at, [this, factor = ev.factor](SimTime) {
            degrade_active_.push_back(factor);
            RecomputeLinkDegrade();
          });
          events_.Schedule(ev.at + ev.duration_ns,
                           [this, factor = ev.factor](SimTime) {
                             auto it = std::find(degrade_active_.begin(),
                                                 degrade_active_.end(), factor);
                             if (it != degrade_active_.end()) {
                               degrade_active_.erase(it);
                             }
                             RecomputeLinkDegrade();
                           });
          break;
        default:
          break;
      }
    }
  }
}

SimCluster::~SimCluster() = default;

// ---- check::ClusterProbe ----------------------------------------------------

uint32_t SimCluster::ProbeNumWorkers() const { return config_.total_workers(); }

SimTime SimCluster::ProbeWorkerClock(uint32_t worker) const {
  return workers_[worker].now;
}

bool SimCluster::ProbeWorkerCrashed(uint32_t worker) const {
  return workers_[worker].crashed;
}

check::QueryProbe SimCluster::ProbeOf(const QueryState& qs) const {
  check::QueryProbe p;
  p.id = qs.id;
  p.attempt = qs.attempt;
  p.done = qs.result.done;
  p.failed = qs.result.failed;
  p.timed_out = qs.result.timed_out;
  p.early_cancel = qs.plan->result_limit() > 0 &&
                   qs.result.rows.size() >= qs.plan->result_limit();
  p.rows_expected = qs.rows_expected;
  p.rows_received = qs.rows_received;
  p.row_count = qs.result.rows.size();
  return p;
}

void SimCluster::ProbeQueries(
    const std::function<void(const check::QueryProbe&)>& fn) const {
  std::vector<uint64_t> ids;
  ids.reserve(queries_.size());
  for (const auto& [id, qs] : queries_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (uint64_t id : ids) fn(ProbeOf(queries_.at(id)));
}

void SimCluster::ProbeMemos(
    const std::function<void(uint32_t partition, uint64_t query, uint32_t step)>&
        fn) const {
  for (uint32_t p = 0; p < config_.num_partitions(); ++p) {
    std::vector<std::pair<uint64_t, uint32_t>> keys;
    memos_[p].ForEachKey(
        [&](uint64_t query, uint32_t step) { keys.emplace_back(query, step); });
    std::sort(keys.begin(), keys.end());
    for (const auto& [query, step] : keys) fn(p, query, step);
  }
}

void SimCluster::ProbePendingWeights(
    const std::function<void(uint32_t worker, uint64_t query, uint32_t scope,
                             Weight w)>& fn) const {
  for (const Worker& w : workers_) {
    std::vector<std::pair<uint64_t, Weight>> cells;
    for (const auto& [key, weight] : w.pending_weights) {
      if (weight != 0) cells.emplace_back(key, weight);
    }
    std::sort(cells.begin(), cells.end());
    for (const auto& [key, weight] : cells) {
      fn(w.id, WeightKeyQuery(key), WeightKeyScope(key), weight);
    }
  }
}

check::QosProbe SimCluster::ProbeQos() const {
  check::QosProbe p;
  p.enabled = qos_active_;
  if (!qos_active_) return p;
  const qos::AdmissionStats& as = admission_->stats();
  p.submitted = as.submitted;
  p.admitted = as.admitted;
  p.shed = as.shed();
  p.cancelled = as.cancelled;
  p.completed = as.completed;
  p.queued = admission_->queued();
  p.running = admission_->running();
  p.spill_enabled = spill_active_;
  for (const Worker& w : workers_) {
    p.task_bytes_enqueued += w.task_bytes_enqueued;
    p.task_bytes_dequeued += w.task_bytes_dequeued;
    p.task_bytes_dropped += w.task_bytes_dropped;
    p.task_bytes_queued += w.task_bytes_queued;
    p.spill_task_bytes_written += w.task_spill_bytes_written;
    p.spill_task_bytes_read += w.task_spill_bytes_read;
    p.spill_task_bytes_dropped += w.task_spill_bytes_dropped;
    p.spill_task_bytes_now += w.task_bytes_spilled;
  }
  for (const MemoTable& m : memos_) {
    p.memo_live_bytes += m.LiveBytes();
    const MemoTable::SpillStats& ss = m.spill_stats();
    p.spill_memo_bytes_written += ss.bytes_written;
    p.spill_memo_bytes_read += ss.bytes_read;
    p.spill_memo_bytes_dropped += ss.bytes_dropped;
    p.spill_memo_bytes_now += m.SpilledBytes();
  }
  return p;
}

void SimCluster::ProbeLinkCredits(
    const std::function<void(const check::LinkCreditProbe&)>& fn) const {
  if (!qos_active_) return;
  for (uint32_t s = 0; s < config_.num_nodes; ++s) {
    for (uint32_t d = 0; d < config_.num_nodes; ++d) {
      const qos::CreditMeter& m = link_credits_[s * config_.num_nodes + d];
      check::LinkCreditProbe p;
      p.src_node = s;
      p.dst_node = d;
      p.granted = m.granted();
      p.available = m.available();
      p.outstanding = m.outstanding();
      p.saturated = m.saturated();
      fn(p);
    }
  }
}

obs::MetricsSnapshot SimCluster::MetricsSnapshot() const {
  obs::MetricsSnapshot s = metrics_.Snapshot();
  s.fault = fault_.stats();
  if (check_ != nullptr) {
    s.checker_attached = true;
    s.checker_trips = check_->trip_count();
    s.checker_trips_by = check_->TripsByChecker();
  }
  if (qos_active_) {
    s.qos_enabled = true;
    const qos::AdmissionStats& as = admission_->stats();
    s.qos.submitted = as.submitted;
    s.qos.admitted = as.admitted;
    s.qos.shed = as.shed();
    s.qos.cancelled = as.cancelled;
    s.qos.peak_queued = as.peak_queued;
    s.qos.flushes_held = qos_stats_.flushes_held;
    s.qos.ingest_deferrals = qos_stats_.ingest_deferrals;
    s.qos.credit_bytes_consumed = qos_stats_.credit_bytes_consumed;
    s.qos.credit_bytes_returned = qos_stats_.credit_bytes_returned;
    for (const Worker& w : workers_) {
      s.qos.peak_task_bytes = std::max(s.qos.peak_task_bytes, w.task_bytes_peak);
    }
    s.qos.peak_memo_bytes = qos_stats_.peak_memo_bytes;
    s.qos.memo_aborts = qos_stats_.memo_aborts;
  }
  if (spill_active_) {
    s.spill_enabled = true;
    for (const MemoTable& m : memos_) {
      const MemoTable::SpillStats& ss = m.spill_stats();
      s.qos.spill_memo_bytes_written += ss.bytes_written;
      s.qos.spill_memo_bytes_read += ss.bytes_read;
      s.qos.spill_memo_bytes_dropped += ss.bytes_dropped;
      s.qos.spill_memo_records += ss.records_spilled;
      s.qos.spill_memo_faults += ss.faults;
    }
    for (const Worker& w : workers_) {
      s.qos.spill_task_bytes_written += w.task_spill_bytes_written;
      s.qos.spill_task_bytes_read += w.task_spill_bytes_read;
      s.qos.spill_task_bytes_dropped += w.task_spill_bytes_dropped;
    }
    s.qos.spill_peak_bytes = spill_stats_.peak_spill_bytes;
    s.qos.spill_pressure_transitions = spill_stats_.pressure_transitions;
    s.qos.spill_last_resort = spill_stats_.last_resort;
  }
  for (const MemoTable& m : memos_) {
    const MemoTable::Stats& ms = m.stats();
    s.memo_hits += ms.hits;
    s.memo_misses += ms.misses;
    s.memo_created += ms.created;
    s.memo_cleared += ms.cleared;
  }
  if (stream_stats_ != nullptr) {
    s.stream_enabled = true;
    s.stream = *stream_stats_;
  }
  if (txn_stats_ != nullptr) {
    s.txn_enabled = true;
    s.txn = *txn_stats_;
  }
  for (const Worker& w : workers_) s.tasks_executed += w.tasks_executed;
  return s;
}

uint64_t SimCluster::Submit(std::shared_ptr<const Plan> plan, SimTime at,
                            Timestamp read_ts, SimTime deadline_ns,
                            uint32_t client_class) {
  if (plan == nullptr || !plan->finalized()) {
    GD_ERROR("Submit requires a finalized plan");
    std::abort();
  }
  uint64_t id = next_query_id_++;
  QueryState& qs = queries_[id];
  qs.id = id;
  qs.plan = std::move(plan);
  qs.coordinator = static_cast<uint32_t>(id % config_.total_workers());
  qs.read_ts = read_ts;
  qs.client_class = client_class;
  qs.deadline_ns = deadline_ns;
  qs.result.query_id = id;
  qs.result.submit_time = std::max(at, now());
  ++pending_queries_;
  metrics_.OnQuerySubmitted();
  tracer_.Instant("submit", "query", qs.result.submit_time,
                  NodeOfWorker(qs.coordinator), qs.coordinator, id, 0);

  if (config_.engine == EngineKind::kBsp) {
    if (qos_active_) {
      // BSP runs its backlog serially, so admission reduces to shedding and
      // the queued-past-deadline check; the fair pop order is meaningless
      // when the driver executes in submission order anyway.
      auto d = admission_->OnSubmit(id, qs.client_class, qs.result.submit_time,
                                    deadline_ns);
      if (d == qos::AdmissionController::Decision::kShed) {
        if (check_ != nullptr) {
          check_->OnAdmission(id, check::AdmissionEvent::kShed,
                              qs.result.submit_time);
        }
        ShedQuery(qs, qs.result.submit_time, "admission backlog full");
        return id;
      }
      if (d == qos::AdmissionController::Decision::kAdmit) {
        qs.admitted = true;
        qs.result.admit_time = qs.result.submit_time;
        metrics_.latency("admission-wait").Record(0);
        if (check_ != nullptr) {
          check_->OnAdmission(id, check::AdmissionEvent::kAdmit,
                              qs.result.submit_time);
        }
      } else if (check_ != nullptr) {
        check_->OnAdmission(id, check::AdmissionEvent::kQueue,
                            qs.result.submit_time);
      }
    }
    bsp_queue_.push_back(BspSubmission{id, qs.plan, qs.result.submit_time, read_ts});
    return id;
  }
  events_.Schedule(qs.result.submit_time, [this, id](SimTime t) {
    auto it = queries_.find(id);
    if (it == queries_.end()) return;
    if (qos_active_) {
      if (!it->second.result.done) AdmitOrQueue(it->second, t);
      return;
    }
    StartQuery(it->second, t);
  });
  if (recovery_active_) {
    // The progress watchdog only exists when faults can lose weight; the
    // fault-free event schedule stays byte-identical to previous builds.
    qs.last_progress = qs.result.submit_time;
    ArmWatchdog(qs, qs.result.submit_time);
  }
  if (deadline_ns > 0) {
    events_.Schedule(qs.result.submit_time + deadline_ns, [this, id](SimTime t) {
      auto it = queries_.find(id);
      if (it == queries_.end() || it->second.result.done) return;
      it->second.result.timed_out = true;
      CompleteQuery(it->second, t);
    });
  }
  return id;
}

Status SimCluster::RunToCompletion(uint64_t max_events) {
  if (config_.engine == EngineKind::kBsp) return RunBspToCompletion();
  uint64_t ran;
  if (check_ == nullptr) {
    ran = events_.RunUntilEmpty(max_events);
  } else {
    // Checked mode: evaluate the invariant harness at every event boundary.
    ran = 0;
    while (ran < max_events && events_.RunOne()) {
      ++ran;
      check_->OnEventBoundary(*this, events_.now());
    }
  }
  quiescent_time_ = events_.now();
  if (check_ != nullptr) {
    check_->OnQuiescence(*this, quiescent_time_, events_.empty());
  }
  if (!events_.empty()) {
    // Livelock / runaway schedule: events kept firing until the budget ran
    // out. Distinct from lost weight, where the queue drains instead. Name
    // the oldest unfinished queries and the deepest worker queues — "budget
    // exhausted" alone is useless when debugging an overloaded cluster.
    return Status::DeadlineExceeded("event budget exhausted after " +
                                    std::to_string(ran) + " events; " +
                                    DescribeStuck());
  }
  if (pending_queries_ > 0) {
    std::vector<uint64_t> stuck;
    for (const auto& [id, qs] : queries_) {
      if (!qs.result.done) stuck.push_back(id);
    }
    std::sort(stuck.begin(), stuck.end());
    std::string ids;
    for (uint64_t id : stuck) {
      if (!ids.empty()) ids += ",";
      ids += std::to_string(id);
    }
    return Status::Internal(
        "event queue drained with " + std::to_string(pending_queries_) +
        " unfinished queries (lost progression weight); stuck query ids: " +
        ids);
  }
  return Status::OK();
}

Result<QueryResult> SimCluster::Run(std::shared_ptr<const Plan> plan,
                                    Timestamp read_ts) {
  uint64_t id = Submit(std::move(plan), now(), read_ts);
  Status s = RunToCompletion();
  if (!s.ok()) return s;
  return queries_.at(id).result;
}

const QueryResult& SimCluster::result(uint64_t query_id) const {
  return queries_.at(query_id).result;
}

void SimCluster::ApplyAtPartition(PartitionId p, uint64_t cost_ns,
                                  const std::function<void(PartitionStore&)>& fn) {
  Worker& w = workers_[WorkerOfPartition(p)];
  w.now = std::max(w.now, now()) + cost_ns;
  fn(graph_->partition(p));
}

void SimCluster::ScheduleAt(SimTime at, std::function<void(SimTime)> fn) {
  events_.Schedule(std::max(at, now()), std::move(fn));
}

void SimCluster::SetCompletionCallback(
    uint64_t id, std::function<void(const QueryResult&, SimTime)> fn) {
  auto it = queries_.find(id);
  if (it == queries_.end()) return;
  if (it->second.result.done) {
    // Terminal already (e.g. shed at submit): fire like the async path would
    // — through a zero-delay event, so the callback may Submit() freely.
    QueryState& qs = it->second;
    qs.on_complete = std::move(fn);
    events_.Schedule(now(), [this, id](SimTime t) {
      auto qit = queries_.find(id);
      if (qit == queries_.end() || !qit->second.on_complete) return;
      auto cb = std::move(qit->second.on_complete);
      qit->second.on_complete = nullptr;
      cb(qit->second.result, t);
    });
    return;
  }
  it->second.on_complete = std::move(fn);
}

/// Fires a query's terminal callback. Async path: via a zero-delay event,
/// so a callback that Submit()s cannot rehash queries_ under a live
/// QueryState reference. BSP path: synchronously (the driver is outside any
/// event when the terminal block runs).
void SimCluster::FireCompletionCallback(QueryState& qs, SimTime at) {
  if (!qs.on_complete) return;
  if (config_.engine == EngineKind::kBsp) {
    auto cb = std::move(qs.on_complete);
    qs.on_complete = nullptr;
    cb(qs.result, at);
    return;
  }
  uint64_t id = qs.id;
  events_.Schedule(at, [this, id](SimTime t) {
    auto it = queries_.find(id);
    if (it == queries_.end() || !it->second.on_complete) return;
    auto cb = std::move(it->second.on_complete);
    it->second.on_complete = nullptr;
    cb(it->second.result, t);
  });
}

// ---- query lifecycle --------------------------------------------------------

void SimCluster::StartQuery(QueryState& qs, SimTime at) {
  const Plan& plan = *qs.plan;
  Worker& coord = workers_[qs.coordinator];
  if (coord.crashed) {
    // The coordinator is down; start (or restart) once it comes back.
    uint64_t id = qs.id;
    events_.Schedule(std::max(at, coord.down_until), [this, id](SimTime t) {
      auto it = queries_.find(id);
      if (it != queries_.end() && !it->second.result.done) {
        StartQuery(it->second, t);
      }
    });
    return;
  }
  qs.restart_pending = false;
  qs.attempt_start = at;
  qs.scope_start = at;
  if (tracer_.enabled() && qs.attempt > 0) {
    tracer_.Instant("attempt-start", "query", at, coord.node, coord.id, qs.id,
                    qs.attempt);
  }
  if (recovery_active_) {
    // Every attempt begins with a live watchdog chain; arming bumps the
    // generation, so a stale chain from the previous attempt dies quietly.
    NoteProgress(qs, at);
    ArmWatchdog(qs, at);
  }
  coord.now = std::max(coord.now, at);
  // Dataflow baselines pay per-worker operator instantiation at query start.
  coord.now += tuning_.per_worker_setup_ns * config_.total_workers() *
               plan.num_steps();

  // Build the root traverser set: the unit weight of scope 0 is split across
  // every root traverser of every pipeline.
  struct RootSpec {
    uint16_t step;
    PartitionId partition;
    VertexId vertex;
  };
  std::vector<RootSpec> roots;
  for (uint16_t r : plan.roots()) {
    const Step& step = plan.step(r);
    std::vector<VertexId> ids = step.RootVertices();
    if (!ids.empty()) {
      for (VertexId v : ids) roots.push_back(RootSpec{r, graph_->PartitionOf(v), v});
    } else if (step.BroadcastRoot()) {
      for (PartitionId p = 0; p < config_.num_partitions(); ++p) {
        roots.push_back(RootSpec{r, p, kInvalidVertex});
      }
    } else {
      roots.push_back(RootSpec{r, static_cast<PartitionId>(qs.coordinator),
                               kInvalidVertex});
    }
  }
  if (roots.empty()) {
    CompleteQuery(qs, coord.now);
    return;
  }
  std::vector<Weight> shares = SplitWeight(kUnitWeight, roots.size(), &rng_);
  if (check_ != nullptr) {
    check_->OnWeightSplit(qs.id, qs.attempt, qs.scope, kUnitWeight,
                          shares.data(), shares.size(), coord.now);
  }
  for (size_t i = 0; i < roots.size(); ++i) {
    Traverser t;
    t.vertex = roots[i].vertex;
    t.step = roots[i].step;
    t.scope = plan.step(roots[i].step).scope();
    t.weight = shares[i];
    SendTraverser(coord, qs.id, roots[i].partition, std::move(t));
  }
  FlushAll(coord);
}

void SimCluster::HandleWeight(QueryState& qs, uint32_t scope, Weight w,
                              Worker& at_worker) {
  Charge(at_worker, CostKind::kTrackerReport, 1);
  if (qs.result.done) {
    if (check_ != nullptr) {
      check_->OnLateWeight(qs.id, scope, w, /*after_done=*/true, at_worker.now);
    }
    return;
  }
  if (recovery_active_) NoteProgress(qs, at_worker.now);
  if (scope != qs.scope) {
    // A report for a scope that already completed would indicate lost
    // tracking; reports for future scopes cannot exist by construction.
    if (check_ != nullptr) {
      check_->OnLateWeight(qs.id, scope, w, /*after_done=*/false, at_worker.now);
    }
    GD_WARN("weight report for unexpected scope");
    return;
  }
  qs.acc += w;
  if (check_ != nullptr) {
    check_->OnWeightAccumulate(qs.id, qs.attempt, scope, w, qs.acc,
                               at_worker.now);
  }
  if (qs.acc == kUnitWeight) ScopeComplete(qs, at_worker);
}

void SimCluster::ScopeComplete(QueryState& qs, Worker& at_worker) {
  const Plan& plan = *qs.plan;
  uint16_t closer = plan.scope_closer(qs.scope);
  if (check_ != nullptr) {
    check_->OnScopeClose(qs.id, qs.attempt, qs.scope, qs.acc, at_worker.now);
  }
  if (tracer_.enabled()) {
    // Termination detection: the scope's coalesced weight reached unity.
    tracer_.Span("scope " + std::to_string(qs.scope), "scope", qs.scope_start,
                 at_worker.now, at_worker.node, at_worker.id, qs.id, qs.attempt,
                 closer == kNoStep ? "\"final\":true" : "");
  }
  if (closer == kNoStep) {
    if (fault_active_ && qs.rows_received < qs.rows_expected) {
      // Every unit of weight arrived but announced result rows are still in
      // flight (or were dropped on the wire). Hold completion: the trailing
      // row arrivals finish the query, or the watchdog retries it.
      qs.awaiting_rows = true;
      return;
    }
    CompleteQuery(qs, at_worker.now);
    return;
  }
  const Step& st = plan.step(closer);
  qs.scope += 1;
  qs.acc = 0;
  qs.scope_start = at_worker.now;

  std::vector<Weight> shares;
  if (st.NeedsCollect()) {
    qs.collecting = true;
    qs.collect = CollectMergeState{};
    qs.replies_expected = config_.num_partitions();
  } else {
    shares = SplitWeight(kUnitWeight, config_.total_workers(), &rng_);
    if (check_ != nullptr) {
      check_->OnWeightSplit(qs.id, qs.attempt, qs.scope, kUnitWeight,
                            shares.data(), shares.size(), at_worker.now);
    }
  }
  for (uint32_t w = 0; w < config_.total_workers(); ++w) {
    Message m;
    m.kind = MessageKind::kFinalize;
    m.src_worker = at_worker.id;
    m.dst_worker = w;
    m.query_id = qs.id;
    m.scope_id = qs.scope;
    m.tag = closer;
    m.weight = st.NeedsCollect() ? 0 : shares[w];
    Charge(at_worker, CostKind::kMsgPack, 1);
    if (w == at_worker.id) {
      RunFinalize(at_worker, m);
    } else {
      Send(at_worker, std::move(m));
    }
  }
  FlushAll(at_worker);
}

void SimCluster::HandleCollectReply(QueryState& qs, const Message& msg,
                                    Worker& at_worker) {
  Charge(at_worker, CostKind::kTrackerReport, 1);
  if (qs.result.done || !qs.collecting) return;
  if (recovery_active_) NoteProgress(qs, at_worker.now);
  const Step& st = qs.plan->step(static_cast<uint16_t>(msg.tag));
  ByteReader reader(msg.payload.data(), msg.payload.size());
  st.OnCollect(&reader, &qs.collect);
  if (++qs.collect.replies < qs.replies_expected) return;

  qs.collecting = false;
  std::vector<Traverser> continuations;
  st.OnCollectComplete(qs.collect, &qs.result.rows, &continuations);
  if (continuations.empty()) {
    CompleteQuery(qs, at_worker.now);
    return;
  }
  std::vector<Weight> shares = SplitWeight(kUnitWeight, continuations.size(), &rng_);
  if (check_ != nullptr) {
    check_->OnWeightSplit(qs.id, qs.attempt, qs.scope, kUnitWeight,
                          shares.data(), shares.size(), at_worker.now);
  }
  for (size_t i = 0; i < continuations.size(); ++i) {
    Traverser t = std::move(continuations[i]);
    t.weight = shares[i];
    EmitTraverser(at_worker, qs, static_cast<PartitionId>(at_worker.id), std::move(t));
  }
  FlushAll(at_worker);
}

void SimCluster::MaybeCancelOnLimit(QueryState& qs, SimTime at) {
  size_t limit = qs.plan->result_limit();
  if (limit == 0 || qs.result.done || qs.result.rows.size() < limit) return;
  // Scoped early termination: enough rows arrived; cancel the remaining
  // traversal. Workers drop tasks of completed queries; the outstanding
  // weight is simply never claimed.
  qs.result.rows.resize(limit);
  CompleteQuery(qs, at);
}

void SimCluster::CompleteQuery(QueryState& qs, SimTime at) {
  if (qs.result.done) return;
  qs.result.done = true;
  qs.result.complete_time = at;
  --pending_queries_;
  if (recovery_active_ && qs.result.retries > 0 && !qs.result.failed) {
    fault_.stats().recovered_queries++;
  }
  metrics_.OnQueryDone(qs.result.LatencyNanos(), qs.result.failed,
                       qs.result.timed_out);
  if (check_ != nullptr) check_->OnQueryComplete(ProbeOf(qs), at);
  FireCompletionCallback(qs, at);
  if (tracer_.enabled()) {
    uint32_t node = NodeOfWorker(qs.coordinator);
    const char* status = qs.result.failed     ? "failed"
                         : qs.result.timed_out ? "timed_out"
                                               : "ok";
    tracer_.Span("attempt " + std::to_string(qs.attempt), "attempt",
                 qs.attempt_start, at, node, qs.coordinator, qs.id, qs.attempt);
    tracer_.Span("query " + std::to_string(qs.id), "query",
                 qs.result.submit_time, at, node, qs.coordinator, qs.id,
                 qs.attempt,
                 std::string("\"status\":\"") + status +
                     "\",\"rows\":" + std::to_string(qs.result.rows.size()) +
                     ",\"retries\":" + std::to_string(qs.result.retries));
  }

  if (qos_active_) {
    if (!qs.admitted) {
      // Finished without ever leaving the backlog (deadline timer fired while
      // queued). Pull it out of the controller; it never started, so there
      // are no memoranda to clear and no fences to send.
      if (admission_->Cancel(qs.id) && check_ != nullptr) {
        check_->OnAdmission(qs.id, check::AdmissionEvent::kCancel, at);
      }
      return;
    }
    if (check_ != nullptr) {
      check_->OnAdmission(qs.id, check::AdmissionEvent::kComplete, at);
    }
    // A running slot freed up: drain the backlog. Pops that sat past their
    // deadline are shed rather than started dead-on-arrival.
    std::vector<uint64_t> admit, shed;
    admission_->OnComplete(at, &admit, &shed);
    for (uint64_t sid : shed) {
      if (check_ != nullptr) {
        check_->OnAdmission(sid, check::AdmissionEvent::kDequeueShed, at);
      }
      QueryState& sq = queries_.at(sid);
      sq.result.timed_out = true;
      ShedQuery(sq, at, "deadline exceeded while queued");
    }
    for (uint64_t aid : admit) {
      if (check_ != nullptr) {
        check_->OnAdmission(aid, check::AdmissionEvent::kDequeueAdmit, at);
      }
      AdmitQuery(queries_.at(aid), at);
    }
  }

  // Memoranda lifetime: cleared cluster-wide once the creating query ends.
  // The clear is applied directly (like AbortAttempt's) — the control fence
  // below is best-effort and the injector may drop it, which used to leak
  // the remote partitions' memos for the rest of the run (caught by the
  // memo-residency checker). The fence still goes out for wire-cost realism
  // and as the remote workers' cleanup trigger in a real deployment, where
  // it would be retried rather than authoritative-on-send.
  for (uint32_t w = 0; w < config_.total_workers(); ++w) {
    memos_[w].ClearQuery(qs.id);
    if (fault_active_) workers_[w].rows_unreported.Erase(qs.id);
  }
  // A watchdog abort reaches here at event time `at`, which can be ahead of
  // the coordinator's local clock; sync it so the control fences below are
  // sent "now", not in the virtual past.
  Worker& coord = workers_[qs.coordinator];
  coord.now = std::max(coord.now, at);
  for (uint32_t w = 0; w < config_.total_workers(); ++w) {
    if (w == coord.id) continue;
    Message m;
    m.kind = MessageKind::kControl;
    m.src_worker = coord.id;
    m.dst_worker = w;
    m.query_id = qs.id;
    Send(coord, std::move(m));
  }
}

// ---- qos: admission, budgets, credits ---------------------------------------

void SimCluster::AdmitOrQueue(QueryState& qs, SimTime at) {
  switch (admission_->OnSubmit(qs.id, qs.client_class, at, qs.deadline_ns)) {
    case qos::AdmissionController::Decision::kAdmit:
      if (check_ != nullptr) {
        check_->OnAdmission(qs.id, check::AdmissionEvent::kAdmit, at);
      }
      AdmitQuery(qs, at);
      break;
    case qos::AdmissionController::Decision::kQueue:
      // Parked in the backlog; a completion (or the deadline timer) is the
      // next event that touches it.
      if (check_ != nullptr) {
        check_->OnAdmission(qs.id, check::AdmissionEvent::kQueue, at);
      }
      break;
    case qos::AdmissionController::Decision::kShed:
      if (check_ != nullptr) {
        check_->OnAdmission(qs.id, check::AdmissionEvent::kShed, at);
      }
      ShedQuery(qs, at, "admission backlog full");
      break;
  }
}

void SimCluster::AdmitQuery(QueryState& qs, SimTime at) {
  qs.admitted = true;
  qs.result.admit_time = at;
  // Recorded only under QoS, so governance-off snapshots stay byte-identical.
  metrics_.latency("admission-wait").Record(at - qs.result.submit_time);
  if (tracer_.enabled() && at > qs.result.submit_time) {
    tracer_.Span("queued", "qos", qs.result.submit_time, at,
                 NodeOfWorker(qs.coordinator), qs.coordinator, qs.id, 0);
  }
  if (recovery_active_) {
    // The backlog wait is not a stall; the progress window starts at
    // admission, not submission.
    NoteProgress(qs, at);
    ArmWatchdog(qs, at);
  }
  StartQuery(qs, at);
}

void SimCluster::ShedQuery(QueryState& qs, SimTime at, const char* why) {
  if (qs.result.done) return;
  // The query never started: no fences to send, no memoranda to clear, no
  // weight in flight. Completion bookkeeping only.
  qs.result.done = true;
  qs.result.failed = true;
  qs.result.resource_exhausted = true;
  qs.result.rows.clear();
  qs.result.failure_reason = why;
  qs.result.complete_time = std::max(at, qs.result.submit_time);
  --pending_queries_;
  metrics_.OnQueryDone(qs.result.LatencyNanos(), /*failed=*/true,
                       qs.result.timed_out);
  if (check_ != nullptr) check_->OnQueryComplete(ProbeOf(qs), at);
  FireCompletionCallback(qs, at);
  if (tracer_.enabled()) {
    tracer_.Instant("shed", "qos", qs.result.complete_time,
                    NodeOfWorker(qs.coordinator), qs.coordinator, qs.id, 0,
                    std::string("\"why\":\"") + why + "\"");
  }
}

void SimCluster::MemoBudgetSweep(Worker& w) {
  MemoTable& table = memos_[w.id];
  uint64_t live = table.LiveBytes();
  qos_stats_.peak_memo_bytes = std::max(qos_stats_.peak_memo_bytes, live);
  const uint64_t budget = config_.qos.worker_memo_budget_bytes;
  if (spill_active_) {
    // Pressure state machine (DESIGN.md §12): evict cold memoranda to the
    // storage tier before considering any abort. What the budget governs
    // shifts from live to *resident* bytes — spilled state occupies the
    // tier, not modelled RAM.
    const qos::SpillConfig& sc = config_.qos.spill;
    const uint64_t high = static_cast<uint64_t>(
        sc.memo_spill_watermark * static_cast<double>(budget));
    uint64_t resident = table.ResidentBytes();
    if (resident > high) {
      SetPressure(w, PressureState::kSpilling);
      SpillMemos(w);
      resident = table.ResidentBytes();
    }
    if (resident <= budget) {
      // Relieved (or never critical). Stay in kSpilling while state is
      // parked on the tier; back to normal once it fully drains.
      if (resident <= high && SpillBytesOf(w) == 0) {
        SetPressure(w, PressureState::kNormal);
      } else {
        SetPressure(w, PressureState::kSpilling);
      }
      return;
    }
    // Eviction could not bring the resident set under budget: the tier is
    // full or the remainder was just faulted back in. Last resort below.
    SetPressure(w, PressureState::kLastResort);
  }
  uint64_t over = spill_active_ ? table.ResidentBytes() : live;
  while (over > budget) {
    // Abort the hungriest resident query; ties go to the smallest id (std::map
    // order plus strict >) so the victim choice is deterministic.
    std::map<uint64_t, uint64_t> by_query;
    table.ForEachState([&](uint64_t query, uint32_t /*step*/, size_t bytes) {
      by_query[query] += bytes;
    });
    uint64_t victim = 0;
    uint64_t victim_bytes = 0;
    for (const auto& [query, bytes] : by_query) {
      if (bytes > victim_bytes) {
        victim = query;
        victim_bytes = bytes;
      }
    }
    auto it = victim_bytes == 0 ? queries_.end() : queries_.find(victim);
    if (it == queries_.end() || it->second.result.done) break;
    QueryState& qs = it->second;
    qs.result.failed = true;
    qs.result.resource_exhausted = true;
    qs.result.rows.clear();
    qs.result.failure_reason = "memo budget exceeded on worker " +
                               std::to_string(w.id) + " (" +
                               std::to_string(victim_bytes) + " live bytes)";
    qos_stats_.memo_aborts++;
    CompleteQuery(qs, w.now);
    over = spill_active_ ? table.ResidentBytes() : table.LiveBytes();
  }
}

// ---- spill manager ----------------------------------------------------------

const char* SimCluster::PressureName(uint8_t s) {
  switch (static_cast<PressureState>(s)) {
    case PressureState::kSpilling:
      return "spilling";
    case PressureState::kLastResort:
      return "last-resort";
    default:
      return "normal";
  }
}

uint64_t SimCluster::SpillBytesOf(const Worker& w) const {
  return memos_[w.id].SpilledBytes() + w.task_bytes_spilled;
}

void SimCluster::SetPressure(Worker& w, PressureState next) {
  uint8_t n = static_cast<uint8_t>(next);
  if (w.pressure == n) return;
  if (next == PressureState::kSpilling) spill_stats_.pressure_transitions++;
  if (next == PressureState::kLastResort) spill_stats_.last_resort++;
  if (tracer_.enabled()) {
    tracer_.Instant("pressure", "spill", w.now, w.node, w.id, 0, 0,
                    std::string("\"state\":\"") + PressureName(n) + "\"");
  }
  w.pressure = n;
}

uint64_t SimCluster::SpillMemos(Worker& w) {
  MemoTable& table = memos_[w.id];
  const qos::SpillConfig& sc = config_.qos.spill;
  const uint64_t target = static_cast<uint64_t>(
      sc.memo_low_watermark *
      static_cast<double>(config_.qos.worker_memo_budget_bytes));
  const uint64_t used = SpillBytesOf(w);
  const uint64_t room = used >= sc.capacity_bytes ? 0 : sc.capacity_bytes - used;
  MemoTable::EvictResult ev = table.EvictColdest(target, room);
  if (ev.records > 0) {
    // One seek per evicted record plus sequential transfer of the bytes.
    w.now += config_.cost.storage.SeekNs(StorageKind::kSpillWrite) * ev.records +
             config_.cost.storage.TransferNs(StorageKind::kSpillWrite, ev.bytes);
    spill_stats_.peak_spill_bytes =
        std::max(spill_stats_.peak_spill_bytes, SpillBytesOf(w));
    if (tracer_.enabled()) {
      tracer_.Instant("memo-spill", "spill", w.now, w.node, w.id, 0, 0,
                      "\"records\":" + std::to_string(ev.records) +
                          ",\"bytes\":" + std::to_string(ev.bytes));
    }
  }
  return ev.bytes;
}

void SimCluster::ChargeMemoFaults(Worker& w) {
  MemoTable& table = memos_[w.id];
  if (!table.HasPendingFaults()) return;
  uint64_t records = 0;
  uint64_t bytes = 0;
  table.TakePendingFaults(&records, &bytes);
  w.now += config_.cost.storage.SeekNs(StorageKind::kSpillRead) * records +
           config_.cost.storage.TransferNs(StorageKind::kSpillRead, bytes);
  if (tracer_.enabled()) {
    tracer_.Instant("memo-fault", "spill", w.now, w.node, w.id, 0, 0,
                    "\"records\":" + std::to_string(records) +
                        ",\"bytes\":" + std::to_string(bytes));
  }
}

void SimCluster::SpillTasks(Worker& w) {
  const qos::SpillConfig& sc = config_.qos.spill;
  const uint64_t target = static_cast<uint64_t>(
      sc.task_low_watermark *
      static_cast<double>(config_.qos.worker_task_budget_bytes));
  const uint64_t used = SpillBytesOf(w);
  uint64_t room = used >= sc.capacity_bytes ? 0 : sc.capacity_bytes - used;
  uint64_t moved_records = 0;
  uint64_t moved_bytes = 0;
  while (w.task_bytes_queued > target && room > 0 && w.num_tasks > 0) {
    // Deepest suffix first: the tail of the highest non-empty bucket is the
    // work farthest from dispatch, so parking it delays the least. The
    // vacated queue position may still be referenced by the bulking merge
    // index; PushTask bounds-checks stale positions before dereferencing.
    uint32_t bi = static_cast<uint32_t>(w.tasks.size());
    while (bi > 0 && w.tasks[bi - 1].q.empty()) --bi;
    if (bi == 0) break;
    Worker::TaskBucket& b = w.tasks[bi - 1];
    uint64_t bytes = b.q.back().trav.WireSize();
    if (bytes > room) break;  // tier exhausted; backpressure takes over
    w.spilled_tasks.push_back(std::move(b.q.back()));
    b.q.pop_back();
    --w.num_tasks;
    w.task_bytes_queued -= bytes;
    w.task_bytes_spilled += bytes;
    w.task_spill_bytes_written += bytes;
    room -= bytes;
    moved_records++;
    moved_bytes += bytes;
  }
  if (moved_records > 0) {
    w.now += config_.cost.storage.SeekNs(StorageKind::kSpillWrite) *
                 moved_records +
             config_.cost.storage.TransferNs(StorageKind::kSpillWrite,
                                             moved_bytes);
    spill_stats_.peak_spill_bytes =
        std::max(spill_stats_.peak_spill_bytes, SpillBytesOf(w));
    SetPressure(w, PressureState::kSpilling);
    if (tracer_.enabled()) {
      tracer_.Instant("task-spill", "spill", w.now, w.node, w.id, 0, 0,
                      "\"records\":" + std::to_string(moved_records) +
                          ",\"bytes\":" + std::to_string(moved_bytes));
    }
  }
}

void SimCluster::ReloadSpilledTasks(Worker& w) {
  if (w.spilled_tasks.empty()) return;
  const qos::SpillConfig& sc = config_.qos.spill;
  const uint64_t limit = static_cast<uint64_t>(
      sc.task_low_watermark *
      static_cast<double>(config_.qos.worker_task_budget_bytes));
  if (w.task_bytes_queued >= limit) return;  // hysteresis: wait for drain
  uint64_t records = 0;
  uint64_t bytes = 0;
  while (!w.spilled_tasks.empty() && records < sc.task_reload_batch &&
         w.task_bytes_queued < limit) {
    Task t = std::move(w.spilled_tasks.front());
    w.spilled_tasks.pop_front();
    uint64_t b = t.trav.WireSize();
    w.task_bytes_spilled -= b;
    w.task_spill_bytes_read += b;
    records++;
    bytes += b;
    // Re-enqueue without the merge probe: the ledger move is an exact
    // spilled -> queued transfer (no new `enqueued` bytes), and a reload is
    // rare enough that missing a bulking merge costs nothing.
    uint32_t bucket = config_.shortest_first_scheduling ? t.trav.hop : 0;
    if (bucket >= w.tasks.size()) w.tasks.resize(bucket + 1);
    Worker::TaskBucket& bk = w.tasks[bucket];
    w.task_bytes_queued += b;
    w.task_bytes_peak = std::max(w.task_bytes_peak, w.task_bytes_queued);
    bk.q.push_back(std::move(t));
    if (bucket < w.first_bucket) w.first_bucket = bucket;
    ++w.num_tasks;
  }
  if (records > 0) {
    w.now += config_.cost.storage.SeekNs(StorageKind::kSpillRead) * records +
             config_.cost.storage.TransferNs(StorageKind::kSpillRead, bytes);
    if (tracer_.enabled()) {
      tracer_.Instant("task-reload", "spill", w.now, w.node, w.id, 0, 0,
                      "\"records\":" + std::to_string(records) +
                          ",\"bytes\":" + std::to_string(bytes));
    }
  }
}

bool SimCluster::SendStalled(const Worker& w) const {
  if (!qos_active_) return false;
  for (const TierBuffer& buf : w.out) {
    if (buf.held && buf.bytes >= config_.qos.sender_stall_bytes) return true;
  }
  return false;
}

void SimCluster::ReturnCredits(Message& msg, SimTime at) {
  if (!qos_active_ || msg.credit_bytes == 0) return;
  uint32_t src_node = NodeOfWorker(msg.src_worker);
  uint32_t dst_node = NodeOfWorker(msg.dst_worker);
  LinkCreditRef(src_node, dst_node).Return(msg.credit_bytes);
  qos_stats_.credit_bytes_returned += msg.credit_bytes;
  if (check_ != nullptr) {
    check_->OnCreditReturn(src_node, dst_node, msg.credit_bytes, at);
  }
  msg.credit_bytes = 0;
  RetryHeldFlushes(src_node, dst_node, at);
}

void SimCluster::RetryHeldFlushes(uint32_t src_node, uint32_t dst_node,
                                  SimTime at) {
  qos::CreditMeter& lc = LinkCreditRef(src_node, dst_node);
  for (uint32_t i = 0; i < config_.workers_per_node; ++i) {
    Worker& w = workers_[src_node * config_.workers_per_node + i];
    TierBuffer& buf = w.out[dst_node];
    if (!buf.held || buf.msgs.empty()) continue;
    if (!lc.CanSend(buf.bytes)) break;  // lowest worker id first; rest wait
    bool was_stalled = SendStalled(w);
    FlushBufferAt(w, dst_node, std::max(w.now, at));
    if (was_stalled && !SendStalled(w)) {
      // The worker parked itself on this backed-up buffer; re-enter the run
      // loop now that the pack has left.
      ScheduleWake(w, std::max(w.now, at));
    }
  }
}

// ---- fault injection & recovery --------------------------------------------

void SimCluster::NoteProgress(QueryState& qs, SimTime at) {
  qs.last_progress = std::max(qs.last_progress, at);
}

void SimCluster::ArmWatchdog(QueryState& qs, SimTime at) {
  uint64_t id = qs.id;
  uint64_t gen = ++qs.watchdog_gen;
  SimTime fire = std::max(at, qs.last_progress + config_.progress_timeout_ns);
  events_.Schedule(fire, [this, id, gen](SimTime t) { WatchdogCheck(id, gen, t); });
}

void SimCluster::WatchdogCheck(uint64_t query_id, uint64_t gen, SimTime at) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) return;
  QueryState& qs = it->second;
  if (qs.result.done || gen != qs.watchdog_gen) return;
  if (qos_active_ && !qs.admitted) {
    // Still waiting in the admission backlog: not a stall, and aborting
    // would "retry" a query that never ran. Keep the chain alive for the
    // eventual admission.
    NoteProgress(qs, at);
    ArmWatchdog(qs, at);
    return;
  }
  if (qs.restart_pending) {
    // A restart is scheduled but has not run yet (StartQuery may keep
    // deferring on a crashed coordinator). Keep the chain alive instead of
    // letting it die, so the eventually restarted attempt is never left
    // unwatched.
    NoteProgress(qs, at);
    ArmWatchdog(qs, at);
    return;
  }
  if (qs.last_progress + config_.progress_timeout_ns > at) {
    ArmWatchdog(qs, at);  // progress since arming: re-check one window later
    return;
  }
  // A full window passed with no coordinator-visible progress: some of the
  // query's weight (or one of its announced rows) is gone.
  AbortAttempt(qs, at, qs.awaiting_rows ? "lost result row" : "lost weight");
}

void SimCluster::AbortAttempt(QueryState& qs, SimTime at, const char* why) {
  if (qs.result.done || qs.restart_pending) return;
  if (qs.result.retries >= config_.max_retries) {
    fault_.stats().failed_queries++;
    qs.result.failed = true;
    qs.result.rows.clear();
    qs.result.failure_reason = std::string(why) + "; gave up after " +
                               std::to_string(qs.result.retries) + " retries";
    CompleteQuery(qs, at);
    return;
  }
  if (tracer_.enabled()) {
    // The aborted attempt's span ends here; the retry instant marks why.
    tracer_.Span("attempt " + std::to_string(qs.attempt), "attempt",
                 qs.attempt_start, at, NodeOfWorker(qs.coordinator),
                 qs.coordinator, qs.id, qs.attempt,
                 std::string("\"aborted\":\"") + why + "\"");
    tracer_.Instant("retry", "fault", at, NodeOfWorker(qs.coordinator),
                    qs.coordinator, qs.id, qs.attempt,
                    std::string("\"why\":\"") + why + "\"");
  }
  fault_.stats().retries++;
  qs.result.retries++;
  // Bumping the attempt fences every in-flight message and queued task of
  // the aborted execution; the retry starts from a clean slate.
  qs.attempt++;
  if (check_ != nullptr) check_->OnAttemptAbort(qs.id, qs.attempt, at);
  qs.scope = 0;
  qs.acc = 0;
  qs.collecting = false;
  qs.collect = CollectMergeState{};
  qs.replies_expected = 0;
  qs.result.rows.clear();
  qs.rows_expected = 0;
  qs.rows_received = 0;
  qs.awaiting_rows = false;
  for (uint32_t p = 0; p < config_.num_partitions(); ++p) {
    memos_[p].ClearQuery(qs.id);
  }
  for (Worker& w : workers_) w.rows_unreported.Erase(qs.id);

  // Exponential backoff; a down coordinator additionally delays the restart
  // until it is back up.
  SimTime backoff = config_.retry_backoff_ns << (qs.result.retries - 1);
  SimTime when = at + backoff;
  Worker& coord = workers_[qs.coordinator];
  if (coord.crashed) when = std::max(when, coord.down_until);
  qs.restart_pending = true;
  qs.last_progress = when;
  uint64_t id = qs.id;
  events_.Schedule(when, [this, id](SimTime t) {
    auto it = queries_.find(id);
    if (it != queries_.end() && !it->second.result.done) {
      StartQuery(it->second, t);
    }
  });
  ArmWatchdog(qs, at);
}

void SimCluster::CrashWorkerNow(uint32_t worker, SimTime at, SimTime restart_after) {
  if (worker >= config_.total_workers()) return;
  Worker& w = workers_[worker];
  if (w.crashed) return;
  fault_.stats().crashes++;
  w.crashed = true;
  w.down_until = at + restart_after;
  tracer_.Instant("crash", "fault", at, w.node, w.id, 0, 0);
  // Volatile state is gone: queued messages and tasks, unsent buffers,
  // coalesced weights, row accounting, and this partition's memoranda. The
  // TEL-backed graph storage survives.
  fault_.stats().lost_in_crash += w.inbox.size();
  if (qos_active_) {
    // Undelivered messages die with the worker, but their link credits must
    // flow back to the senders or the link chokes forever. Queued task bytes
    // move to the dropped column so the ledger still balances.
    for (Message& m : w.inbox) ReturnCredits(m, at);
    w.task_bytes_dropped += w.task_bytes_queued;
    w.task_bytes_queued = 0;
    if (spill_active_) {
      // The crash takes the worker's spill files with it: spilled tasks move
      // to the dropped column (conservation) and the spill ledger records
      // the loss; the memo side is handled by MemoTable::Clear below.
      w.task_bytes_dropped += w.task_bytes_spilled;
      w.task_spill_bytes_dropped += w.task_bytes_spilled;
      w.task_bytes_spilled = 0;
      w.spilled_tasks.clear();
      w.pressure = static_cast<uint8_t>(PressureState::kNormal);
    }
  }
  w.inbox.clear();
  w.tasks.clear();
  w.first_bucket = 0;
  w.num_tasks = 0;
  w.pending_weights.clear();
  w.rows_unreported.Clear();
  for (TierBuffer& buf : w.out) {
    // Unflushed buffers never consumed credits; just drop them.
    buf.msgs.clear();
    buf.bytes = 0;
    buf.merge_index.Clear();
    buf.held = false;
  }
  memos_[worker].Clear();
  // The transaction manager's volatile per-partition state (lock table,
  // prepared set) dies with the worker too; its durable state survives like
  // the TEL does.
  if (crash_observer_) crash_observer_(worker, at);
  // Schedule the restart before aborting attempts so that at an equal
  // timestamp the worker is back up when a rescheduled StartQuery fires.
  events_.Schedule(w.down_until,
                   [this, worker](SimTime t) { RestartWorker(worker, t); });
  if (recovery_active_) {
    // Queries coordinated here lost their tracking state outright; retry
    // them immediately rather than waiting for the watchdog.
    std::vector<uint64_t> coordinated;
    for (auto& [id, qs] : queries_) {
      if (!qs.result.done && qs.coordinator == worker) coordinated.push_back(id);
    }
    std::sort(coordinated.begin(), coordinated.end());
    for (uint64_t id : coordinated) {
      AbortAttempt(queries_.at(id), at, "coordinator crash");
    }
  }
}

void SimCluster::TxnSend(uint32_t src_worker, Message&& msg) {
  Worker& from = workers_[src_worker];
  if (from.crashed) return;  // a dead coordinator sends nothing
  from.now = std::max(from.now, now());
  uint32_t dst_node = NodeOfWorker(msg.dst_worker);
  Send(from, std::move(msg));
  // The commit protocol runs from scheduled events, never from a worker task
  // quantum, so nothing else would flush the tier buffer this message may
  // now be sitting in.
  if (dst_node != from.node) FlushBufferAt(from, dst_node, from.now);
}

void SimCluster::InjectCrash(uint32_t worker, SimTime restart_after) {
  CrashWorkerNow(worker, now(), restart_after);
}

void SimCluster::RecomputeLinkDegrade() {
  link_degrade_ = 1.0;
  for (double f : degrade_active_) link_degrade_ *= f;
}

void SimCluster::RestartWorker(uint32_t worker, SimTime at) {
  Worker& w = workers_[worker];
  if (!w.crashed) return;
  fault_.stats().restarts++;
  w.crashed = false;
  tracer_.Instant("restart", "fault", at, w.node, w.id, 0, 0);
  // New incarnation: pre-crash in-flight messages (in either direction) now
  // fail the epoch fence at delivery.
  w.epoch++;
  w.now = std::max(w.now, at);
}

// ---- worker execution -------------------------------------------------------

void SimCluster::ScheduleWake(Worker& w, SimTime at) {
  if (w.crashed) return;
  at = std::max(at, now());
  if (w.running) return;  // the running quantum reschedules itself as needed
  if (w.wake_pending && w.next_wake <= at) return;
  w.wake_pending = true;
  w.next_wake = at;
  uint32_t id = w.id;
  events_.Schedule(at, [this, id](SimTime t) { RunWorker(workers_[id], t); });
}

void SimCluster::RunWorker(Worker& w, SimTime at) {
  w.wake_pending = false;
  if (w.crashed) return;
  w.running = true;
  w.now = std::max(w.now, at);
  IngestInbox(w);
  if (spill_active_) ReloadSpilledTasks(w);
  uint32_t executed = 0;
  while (executed < config_.quantum_tasks && HasTask(w) &&
         !(qos_active_ && SendStalled(w))) {
    ExecuteTask(w, PopTask(w));
    ++executed;
  }
  w.running = false;
  // Spilled tasks are pending work: a worker must never sleep forever while
  // holding them, or their weight is stranded on the tier.
  const bool spill_pending = spill_active_ && !w.spilled_tasks.empty();
  if (qos_active_ && SendStalled(w)) {
    // Parked on send credits: flush whatever fits, then stop WITHOUT a
    // self-wake — spinning at a fixed virtual time would livelock the event
    // loop. RetryHeldFlushes (on credit return) or the next inbox delivery
    // reschedules this worker.
    FlushAll(w);
    if (!SendStalled(w) && (HasTask(w) || !w.inbox.empty() || spill_pending)) {
      ScheduleWake(w, w.now);
    }
    return;
  }
  if (HasTask(w) || !w.inbox.empty() || spill_pending) {
    ScheduleWake(w, w.now);
    return;
  }
  // Idle: flush buffered messages and coalesced weights, then sleep until
  // the next delivery wakes us (paper §IV-B: flush-before-sleep).
  FlushAll(w);
  if (!w.inbox.empty()) ScheduleWake(w, w.now);
}

void SimCluster::IngestInbox(Worker& w) {
  // With the spill manager on, the budget trigger can be pulled in below the
  // budget itself (task_spill_watermark < 1); off, it is exactly the budget.
  uint64_t task_high = config_.qos.worker_task_budget_bytes;
  if (spill_active_) {
    task_high = std::min(
        task_high,
        static_cast<uint64_t>(config_.qos.spill.task_spill_watermark *
                              static_cast<double>(task_high)));
  }
  while (!w.inbox.empty()) {
    // Reuse the worker's scratch vector for the swap (empty while in use, so
    // a reentrant drain would just allocate fresh — correct either way).
    std::vector<Message> batch = std::move(w.inbox_scratch);
    batch.clear();
    batch.swap(w.inbox);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (qos_active_ && batch[i].kind == MessageKind::kTraverserBatch &&
          w.task_bytes_queued >= task_high && !SendStalled(w)) {
        // Over the task trigger. With the spill manager on, first try to
        // absorb the pressure by parking the deepest queued suffix on the
        // storage tier; only when the tier cannot take it (capacity
        // exhausted) fall back to deferral-based backpressure below.
        if (spill_active_) SpillTasks(w);
        if (spill_active_ && w.task_bytes_queued < task_high) {
          // Spilling freed room; keep ingesting this message normally.
        } else {
        // Task-budget backpressure: stop pulling work in the moment the
        // queue crosses the budget — mid-inbox, so a large backlog of
        // delivered frames cannot overshoot it by more than one message.
        // The unread suffix keeps its credits (stalling the upstream
        // senders) and precedes anything delivered since the swap, so it
        // goes back at the FRONT of the inbox. Non-task messages (weights,
        // finalize, control) still process: they carry no task bytes and
        // delaying them would only slow completions that free the budget.
        // Exception: a sender blocked on credits always ingests —
        // returning the inbox's credits is what unblocks the reverse
        // direction of a mutually-stalled node pair.
        qos_stats_.ingest_deferrals++;
        w.inbox.insert(w.inbox.begin(),
                       std::make_move_iterator(batch.begin() +
                                               static_cast<ptrdiff_t>(i)),
                       std::make_move_iterator(batch.end()));
        batch.clear();
        w.inbox_scratch = std::move(batch);
        return;
        }
      }
      // Ingestion is the normal terminal disposition of a credited message.
      ReturnCredits(batch[i], w.now);
      Charge(w, CostKind::kMsgUnpack, 1);
      HandleMessage(w, std::move(batch[i]));
    }
    batch.clear();
    w.inbox_scratch = std::move(batch);
  }
}

void SimCluster::HandleMessage(Worker& w, Message&& msg) {
  if (msg.kind == MessageKind::kControl && msg.tag >= kTxnControlTagBase) {
    // Transaction-protocol traffic: synthetic query ids that never appear in
    // queries_, fenced by the manager itself (per-txn attempt numbers), so it
    // must be routed before the lookup and the query attempt fence below.
    if (txn_handler_) txn_handler_(w.id, msg);
    payload_pool_.Release(std::move(msg.payload));
    return;
  }
  auto qit = queries_.find(msg.query_id);
  if (qit == queries_.end()) return;
  QueryState& qs = qit->second;
  if (fault_active_ && msg.attempt != qs.attempt) {
    // The message belongs to an aborted attempt of this query.
    fault_.stats().fenced_messages++;
    return;
  }
  switch (msg.kind) {
    case MessageKind::kTraverserBatch: {
      ByteReader reader(msg.payload.data(), msg.payload.size());
      // Pooled receive: the recycled traverser brings vars/path capacity;
      // the fixed-offset prefix decodes with one bounds check (see
      // Traverser::DeserializeInto).
      Traverser t = trav_pool_.Acquire();
      Traverser::DeserializeInto(&reader, &t);
      Task task{msg.query_id, static_cast<PartitionId>(msg.tag), std::move(t)};
      task.attempt = msg.attempt;
      task.site = msg.trav_site;  // reuse the sender's hash for queue merging
      PushTask(w, std::move(task));
      break;
    }
    case MessageKind::kWeightReport:
      if (fault_active_ && msg.row_delta > 0) qs.rows_expected += msg.row_delta;
      HandleWeight(qs, msg.scope_id, msg.weight, w);
      break;
    case MessageKind::kFinalize:
      RunFinalize(w, msg);
      break;
    case MessageKind::kCollectReply:
      HandleCollectReply(qs, msg, w);
      break;
    case MessageKind::kResultRow: {
      // A completed result is frozen: rows trailing a limit-cancel or a
      // deadline timeout must not mutate it after the fact.
      if (qs.result.done) break;
      ByteReader reader(msg.payload.data(), msg.payload.size());
      // tag carries the bulk multiplicity of the emitted row (0 = legacy 1).
      uint32_t nrows = msg.tag == 0 ? 1 : static_cast<uint32_t>(msg.tag);
      Row row = DeserializeRow(&reader);
      for (uint32_t i = 1; i < nrows; ++i) qs.result.rows.push_back(row);
      qs.result.rows.push_back(std::move(row));
      if (fault_active_) {
        qs.rows_received += nrows;
        if (recovery_active_) NoteProgress(qs, w.now);
        if (qs.awaiting_rows && qs.rows_received >= qs.rows_expected) {
          qs.awaiting_rows = false;
          CompleteQuery(qs, w.now);
          break;
        }
      }
      MaybeCancelOnLimit(qs, w.now);
      break;
    }
    case MessageKind::kControl:
      memos_[w.id].ClearQuery(msg.query_id);
      if (fault_active_) w.rows_unreported.Erase(msg.query_id);
      break;
    default:
      break;
  }
  // The message is at its terminal disposition; recycle its payload buffer
  // (every handler above has finished reading it).
  payload_pool_.Release(std::move(msg.payload));
}

void SimCluster::ExecuteTask(Worker& w, Task&& task) {
  auto qit = queries_.find(task.query);
  if (qit == queries_.end() || qit->second.result.done) return;
  QueryState& qs = qit->second;
  if (fault_active_ && task.attempt != qs.attempt) {
    fault_.stats().fenced_messages++;
    return;
  }
  if (tuning_.per_task_sched_extra_ns > 0) {
    w.now += tuning_.per_task_sched_extra_ns;
  }
  ExecContext ctx(this, &w, &qs, task.partition, ExecContext::Mode::kAsync, &w.now);
  if (check_ != nullptr) {
    // Per-task conservation (Theorem 1's local obligation): whatever weight
    // entered this task must leave it, as emissions or finishes.
    ctx.TrackWeights();
    Weight w_in = task.trav.weight;
    uint32_t scope_in = task.trav.scope;
    uint64_t query = task.query;
    uint32_t attempt = task.attempt;
    qs.plan->step(task.trav.step).Execute(std::move(task.trav), ctx);
    check_->OnTaskWeight(query, attempt, scope_in, w_in, ctx.emitted_weight(),
                         ctx.finished_weight(), w.now);
  } else {
    qs.plan->step(task.trav.step).Execute(std::move(task.trav), ctx);
  }
  // Any spilled memoranda this task touched were faulted back in; charge
  // the virtual read time before the task's end-of-execution timestamp is
  // observed by the sweep below.
  if (spill_active_) ChargeMemoFaults(w);
  ++w.tasks_executed;
  if (qos_active_ && config_.qos.memo_check_interval > 0 &&
      w.tasks_executed % config_.qos.memo_check_interval == 0) {
    MemoBudgetSweep(w);
    if (spill_active_ &&
        w.task_bytes_queued >= config_.qos.worker_task_budget_bytes) {
      // Locally-generated pushes bypass inbox backpressure; bound their
      // overshoot at sweep granularity by parking the deepest suffix.
      SpillTasks(w);
    }
  }
}

void SimCluster::RunFinalize(Worker& w, const Message& msg) {
  auto qit = queries_.find(msg.query_id);
  if (qit == queries_.end() || qit->second.result.done) return;
  QueryState& qs = qit->second;
  const Step& st = qs.plan->step(static_cast<uint16_t>(msg.tag));
  w.now += config_.cost.finalize_ns;

  // Each worker finalizes the partitions it owns (one, in this build).
  PartitionId partition = static_cast<PartitionId>(w.id);
  ExecContext ctx(this, &w, &qs, partition, ExecContext::Mode::kFinalize, &w.now);
  st.OnFinalize(ctx);
  // Finalize reads its partition's memo state; charge any fault-ins.
  if (spill_active_) ChargeMemoFaults(w);

  if (!st.NeedsCollect()) {
    // Continuation protocol: distribute this worker's share of the next
    // scope's unit weight over the emissions; leftover weight finishes now.
    uint32_t new_scope = st.scope() + 1;
    std::vector<Traverser>& emitted = ctx.emitted();
    if (emitted.empty()) {
      ExecContext report_ctx(this, &w, &qs, partition, ExecContext::Mode::kAsync,
                             &w.now);
      report_ctx.Finish(new_scope, msg.weight);
    } else {
      std::vector<Weight> shares = SplitWeight(msg.weight, emitted.size(), &w.rng);
      if (check_ != nullptr) {
        check_->OnWeightSplit(qs.id, qs.attempt, new_scope, msg.weight,
                              shares.data(), shares.size(), w.now);
      }
      for (size_t i = 0; i < emitted.size(); ++i) {
        Traverser t = std::move(emitted[i]);
        t.weight = shares[i];
        EmitTraverser(w, qs, partition, std::move(t));
      }
    }
  }
  FlushAll(w);
}

void SimCluster::PushTask(Worker& w, Task&& task) {
  // Shortest-trajectory-first bucketing; the FIFO ablation funnels every
  // task through one bucket.
  uint32_t bucket = config_.shortest_first_scheduling ? task.trav.hop : 0;
  if (bucket >= w.tasks.size()) w.tasks.resize(bucket + 1);
  Worker::TaskBucket& b = w.tasks[bucket];
  if (config_.traverser_bulking && task.site != 0) {
    // Receive/execute-side bulking: merge into a still-queued same-site task
    // of the same (query, attempt, partition) in O(1). The site hash rode in
    // from the send side; a hit is confirmed field-by-field — never merged
    // on the hash alone — and the absorbed task takes the queue position of
    // its target, so the dispatch order stays deterministic (first
    // occurrence wins).
    uint64_t h = HashCombine(
        task.site,
        Mix64(task.query ^ (static_cast<uint64_t>(task.attempt) << 32) ^
              (static_cast<uint64_t>(task.partition) << 1)));
    uint64_t newpos = b.base + b.q.size();
    auto [pos, inserted] = b.index.TryEmplace(h, newpos);
    if (!inserted) {
      // Lower bound fences dispatched positions; the upper bound fences
      // positions vacated by task spilling (back-of-bucket eviction).
      if (*pos >= b.base && *pos < b.base + b.q.size()) {
        Task& dst = b.q[*pos - b.base];
        Weight dst_before = dst.trav.weight;
        if (dst.query == task.query && dst.attempt == task.attempt &&
            dst.partition == task.partition && dst.trav.SameSite(task.trav) &&
            dst.trav.MergeFrom(task.trav)) {
          auto& wm = metrics_.worker(w.id);
          wm.bulk_merges++;
          wm.traversers_bulked += task.trav.bulk;
          if (check_ != nullptr) {
            check_->OnWeightMerge(task.query, task.attempt, dst.trav.scope,
                                  dst_before, task.trav.weight, dst.trav.weight,
                                  w.now);
          }
          trav_pool_.Release(std::move(task.trav));
          return;  // absorbed: nothing enqueued
        }
      }
      *pos = newpos;  // dispatched or unmergeable: track the newcomer
    }
  }
  if (qos_active_) {
    // Byte ledger on the actual enqueue only — a merge-absorbed task changed
    // nothing (MergeFrom rewrites weight/bulk in place, so the carrier's
    // WireSize at pop still equals its size at push).
    uint64_t bytes = task.trav.WireSize();
    w.task_bytes_queued += bytes;
    w.task_bytes_enqueued += bytes;
    w.task_bytes_peak = std::max(w.task_bytes_peak, w.task_bytes_queued);
  }
  b.q.push_back(std::move(task));
  if (bucket < w.first_bucket) w.first_bucket = bucket;
  ++w.num_tasks;
}

SimCluster::Task SimCluster::PopTask(Worker& w) {
  // num_tasks > 0 (checked by the caller) guarantees a non-empty bucket at
  // or after the cursor.
  while (w.tasks[w.first_bucket].q.empty()) ++w.first_bucket;
  Worker::TaskBucket& b = w.tasks[w.first_bucket];
  Task task = std::move(b.q.front());
  b.q.pop_front();
  ++b.base;
  if (b.q.empty() && !b.index.empty()) b.index.Clear();
  --w.num_tasks;
  if (qos_active_) {
    uint64_t bytes = task.trav.WireSize();
    w.task_bytes_queued -= bytes;
    w.task_bytes_dequeued += bytes;
  }
  return task;
}

// ---- routing / transport ----------------------------------------------------

void SimCluster::EmitTraverser(Worker& from, QueryState& qs, PartitionId current,
                               Traverser&& t) {
  const Step& target = qs.plan->step(t.step);
  t.scope = target.scope();
  PartitionId route = target.Route(t, graph_->partitioner());
  PartitionId p = route == kLocalRoute ? current : route;
  if (tuning_.centralized_agg && target.blocking()) p = 0;
  SendTraverser(from, qs.id, p, std::move(t));
}

void SimCluster::SendTraverser(Worker& from, uint64_t query, PartitionId partition,
                               Traverser&& t) {
  uint32_t dst = ExecWorkerFor(partition);
  if (dst == from.id) {
    uint64_t site = config_.traverser_bulking ? t.SiteHash() : 0;
    Task task{query, partition, std::move(t)};
    task.site = site;
    if (fault_active_) {
      auto qit = queries_.find(query);
      if (qit != queries_.end()) task.attempt = qit->second.attempt;
    }
    PushTask(from, std::move(task));
    // Ensure the worker is (re)scheduled if this was emitted outside a
    // running quantum (e.g. query start on an idle worker).
    ScheduleWake(from, from.now);
    return;
  }
  ByteWriter out(payload_pool_.Acquire(), t.WireSize() + 8);
  t.Serialize(&out);
  Message m;
  m.kind = MessageKind::kTraverserBatch;
  m.src_worker = from.id;
  m.dst_worker = dst;
  m.query_id = query;
  m.tag = partition;
  m.payload = out.Take();
  // Merge-candidate prefilter for the tier-1 buffer; 0 disables merging for
  // this message (the hash only gates a byte-exact comparison, so the rare
  // genuine-zero hash merely misses an optimization).
  if (config_.traverser_bulking) m.trav_site = t.SiteHash();
  Charge(from, CostKind::kMsgPack, 1);
  // The traverser now lives on as payload bytes; recycle its heap storage.
  trav_pool_.Release(std::move(t));
  Send(from, std::move(m));
}

void SimCluster::Send(Worker& from, Message&& msg) {
  metrics_.net().messages_by_kind[static_cast<int>(msg.kind)]++;
  metrics_.OnPairMessage(msg.src_worker, msg.dst_worker);
  uint32_t dst_node = NodeOfWorker(msg.dst_worker);
  if (fault_active_) {
    // Stamp fencing metadata at the send boundary (once, for both tiers).
    // Messages whose query_id is unknown (transaction protocol: synthetic
    // ids) keep the attempt the caller stamped — the txn manager fences its
    // own retry rounds. Real query entries are never erased from queries_,
    // so "unknown" can only mean a synthetic id.
    auto qit = queries_.find(msg.query_id);
    if (qit != queries_.end()) msg.attempt = qit->second.attempt;
    msg.src_epoch = from.epoch;
    msg.dst_epoch = workers_[msg.dst_worker].epoch;
  }
  if (dst_node == from.node) {
    metrics_.net().local_messages++;
    DeliverLocal(from, std::move(msg), from.now + config_.cost.shm_hop_ns);
    return;
  }
  metrics_.net().remote_messages++;
  if (fault_active_) {
    msg.seq = ++PairSeq(msg.src_worker, msg.dst_worker);
    if (check_ != nullptr) {
      check_->OnSeqAssign(msg.src_worker, msg.dst_worker, msg.seq);
    }
    FaultInjector::SendDecision d = fault_.OnRemoteSend();
    if (d.drop) return;  // the message vanishes on the wire
    std::optional<Message> dup;
    if (d.duplicate) {
      // Both copies carry one seq, so the receiver suppresses the second.
      // Neither may merge into a differently-sequenced carrier: the carrier
      // would be delivered AND the twin would survive the seq check,
      // double-counting the folded weight.
      msg.no_bulk = true;
      dup = msg;
    }
    if (d.extra_delay_ns > 0) {
      // Straggler path: the message leaves the combining pipeline and
      // travels in its own frame, arriving extra_delay_ns late.
      size_t wire = msg.WireSize() + kFrameHeaderBytes;
      metrics_.OnFrame(from.node, dst_node, wire);
      SimTime delivery = from.now + config_.cost.frame_overhead_ns +
                         config_.cost.TransmitNs(wire) +
                         config_.cost.link_latency_ns + d.extra_delay_ns;
      events_.Schedule(delivery, [this, m = std::move(msg)](SimTime t) mutable {
        DeliverToWorker(std::move(m), t);
      });
      if (!dup) return;
      msg = std::move(*dup);  // the duplicate still rides the normal path
      dup.reset();
      metrics_.net().remote_messages++;
      metrics_.net().messages_by_kind[static_cast<int>(msg.kind)]++;
      metrics_.OnPairMessage(msg.src_worker, msg.dst_worker);
    }
    EnqueueRemote(from, dst_node, std::move(msg));
    if (dup) {
      metrics_.net().remote_messages++;
      metrics_.net().messages_by_kind[static_cast<int>(dup->kind)]++;
      metrics_.OnPairMessage(dup->src_worker, dup->dst_worker);
      EnqueueRemote(from, dst_node, std::move(*dup));
    }
    return;
  }
  EnqueueRemote(from, dst_node, std::move(msg));
}

void SimCluster::EnqueueRemote(Worker& from, uint32_t dst_node, Message&& msg) {
  if (config_.io_mode == IoMode::kSyncSend) {
    size_t bytes = msg.WireSize();
    std::vector<Message> one = frame_pool_.Acquire();
    one.push_back(std::move(msg));
    SubmitPack(from.node, dst_node, std::move(one), bytes, from.now,
               /*charge_sender=*/true, &from);
    return;
  }
  TierBuffer& buf = from.out[dst_node];
  if (config_.traverser_bulking && msg.kind == MessageKind::kTraverserBatch &&
      msg.trav_site != 0 && !msg.no_bulk) {
    uint32_t newidx = static_cast<uint32_t>(buf.msgs.size());
    auto [idx, inserted] = buf.merge_index.TryEmplace(msg.trav_site, newidx);
    if (!inserted) {
      Message& cand = buf.msgs[*idx];
      Weight cand_before = 0;
      if (check_ != nullptr && cand.payload.size() >= Traverser::kBulkOffset) {
        std::memcpy(&cand_before, cand.payload.data() + Traverser::kWeightOffset,
                    sizeof(cand_before));
      }
      if (cand.query_id == msg.query_id && cand.dst_worker == msg.dst_worker &&
          cand.tag == msg.tag && cand.attempt == msg.attempt &&
          cand.src_epoch == msg.src_epoch && cand.dst_epoch == msg.dst_epoch &&
          !cand.no_bulk && Traverser::MergePayloads(cand.payload, msg.payload)) {
        // Absorbed: weight summed and bulk added into the buffered carrier.
        // The absorbed message never reaches the wire (its seq surfaces as a
        // gap at the receiver, which the bounded reorder window tolerates
        // exactly like a drop).
        uint32_t absorbed_bulk;
        std::memcpy(&absorbed_bulk, msg.payload.data() + Traverser::kBulkOffset,
                    sizeof(absorbed_bulk));
        auto& wm = metrics_.worker(from.id);
        wm.bulk_merges++;
        wm.traversers_bulked += absorbed_bulk;
        metrics_.OnSendMerged(msg.src_worker, msg.dst_worker, msg.kind);
        if (check_ != nullptr) {
          Weight added = 0, cand_after = 0;
          uint32_t scope = 0;
          std::memcpy(&added, msg.payload.data() + Traverser::kWeightOffset,
                      sizeof(added));
          std::memcpy(&cand_after,
                      cand.payload.data() + Traverser::kWeightOffset,
                      sizeof(cand_after));
          std::memcpy(&scope, msg.payload.data() + 12, sizeof(scope));
          check_->OnWeightMerge(msg.query_id, msg.attempt, scope, cand_before,
                                added, cand_after, from.now);
        }
        payload_pool_.Release(std::move(msg.payload));
        return;
      }
      *idx = newidx;  // unmergeable: track the newcomer for this site
    }
  }
  buf.bytes += msg.WireSize();
  buf.msgs.push_back(std::move(msg));
  if (buf.bytes >= config_.flush_threshold_bytes) {
    FlushBuffer(from, dst_node);
    FlushWeights(from);
  }
}

void SimCluster::DeliverLocal(Worker& from, Message&& msg, SimTime at) {
  if (fault_active_) {
    SimTime wake = msg.dst_worker == from.id ? from.now : at;
    DeliverToWorker(std::move(msg), wake);
    return;
  }
  Worker& dst = workers_[msg.dst_worker];
  dst.inbox.push_back(std::move(msg));
  if (dst.id != from.id) {
    ScheduleWake(dst, at);
  } else {
    ScheduleWake(dst, from.now);
  }
}

void SimCluster::DeliverToWorker(Message&& msg, SimTime at) {
  Worker& dst = workers_[msg.dst_worker];
  if (dst.crashed) {
    fault_.stats().lost_in_crash++;
    ReturnCredits(msg, at);  // dropped on the floor; free the link
    return;
  }
  if (fault_active_) {
    if (msg.src_epoch != workers_[msg.src_worker].epoch ||
        msg.dst_epoch != dst.epoch) {
      // The message was addressed to (or sent by) a pre-crash incarnation.
      fault_.stats().fenced_messages++;
      ReturnCredits(msg, at);
      return;
    }
    if (msg.seq != 0) {
      uint64_t pair =
          (static_cast<uint64_t>(msg.src_worker) << 32) | msg.dst_worker;
      SeqWindow& win = seen_seqs_[pair];
      bool fresh = win.Insert(msg.seq);
      if (check_ != nullptr) {
        check_->OnSeqDeliver(msg.src_worker, msg.dst_worker, msg.seq, fresh,
                             win.low, win.max_seen);
      }
      if (!fresh) {
        fault_.stats().duplicates_suppressed++;
        ReturnCredits(msg, at);
        return;
      }
    }
  }
  dst.inbox.push_back(std::move(msg));
  ScheduleWake(dst, at);
}

void SimCluster::FlushBuffer(Worker& w, uint32_t dst_node) {
  FlushBufferAt(w, dst_node, w.now);
}

void SimCluster::FlushBufferAt(Worker& w, uint32_t dst_node, SimTime at) {
  TierBuffer& buf = w.out[dst_node];
  if (buf.msgs.empty()) return;
  if (qos_active_ && dst_node != w.node) {
    qos::CreditMeter& lc = LinkCreditRef(w.node, dst_node);
    if (!lc.CanSend(buf.bytes)) {
      // Not enough credits for the pack: hold the whole buffer until returns
      // free the link (RetryHeldFlushes reruns this flush).
      if (!buf.held) {
        buf.held = true;
        qos_stats_.flushes_held++;
      }
      return;
    }
    uint64_t consumed = lc.Consume(buf.bytes);
    qos_stats_.credit_bytes_consumed += consumed;
    if (check_ != nullptr) {
      check_->OnCreditConsume(w.node, dst_node, consumed, at);
    }
    // Attribute the consumed credits message-by-message so every terminal
    // disposition (ingest, fence drop, crash wipe) returns its exact share.
    // The empty-window overdraft can consume less than buf.bytes; trailing
    // messages then carry zero.
    uint64_t left = consumed;
    for (Message& m : buf.msgs) {
      uint64_t share = std::min<uint64_t>(m.WireSize(), left);
      m.credit_bytes = static_cast<uint32_t>(share);
      left -= share;
    }
    buf.held = false;
  }
  // Swap a recycled vector in: the flushed one comes back through
  // frame_pool_ after delivery, so steady-state flushing allocates nothing.
  std::vector<Message> msgs = frame_pool_.Acquire();
  msgs.swap(buf.msgs);
  size_t bytes = buf.bytes;
  buf.bytes = 0;
  buf.merge_index.Clear();  // indices referenced the flushed msgs
  // In full GraphDance (TLC+NLC) the worker hands the pack to the node's
  // network thread and keeps computing; otherwise the worker performs the
  // send syscall itself.
  bool charge_sender = config_.io_mode != IoMode::kTlcNlc;
  SubmitPack(w.node, dst_node, std::move(msgs), bytes, at, charge_sender, &w);
}

void SimCluster::FlushAll(Worker& w) {
  // Weights first: their report messages must ride in this flush, not sit
  // in a freshly-emptied buffer until the next one.
  FlushWeights(w);
  for (uint32_t n = 0; n < config_.num_nodes; ++n) FlushBuffer(w, n);
}

void SimCluster::FlushWeights(Worker& w) {
  if (w.pending_weights.empty()) return;
  auto pending = std::move(w.pending_weights);
  w.pending_weights.clear();
  for (const auto& [key, weight] : pending) {
    uint64_t query = WeightKeyQuery(key);
    uint32_t scope = WeightKeyScope(key);
    auto qit = queries_.find(query);
    if (qit == queries_.end()) continue;
    // One coalesced report per (query, scope) leaves this worker, whether it
    // is handled locally or crosses the wire.
    metrics_.worker(w.id).weight_reports++;
    QueryState& qs = qit->second;
    if (qs.coordinator == w.id) {
      if (fault_active_) {
        // Same symmetry rule as ExecContext::Finish: locally handled reports
        // still account this worker's announced remote rows.
        if (const uint32_t* rows = w.rows_unreported.Find(query)) {
          qs.rows_expected += *rows;
          w.rows_unreported.Erase(query);
        }
      }
      HandleWeight(qs, scope, weight, w);
      continue;
    }
    Message m;
    m.kind = MessageKind::kWeightReport;
    m.src_worker = w.id;
    m.dst_worker = qs.coordinator;
    m.query_id = query;
    m.scope_id = scope;
    m.weight = weight;
    if (fault_active_) {
      // Announce rows sent remotely since the last report. Because weight
      // completeness requires every report to arrive, the coordinator is
      // guaranteed to have the full expected-row count by the time the
      // final scope's weight closes.
      if (const uint32_t* rows = w.rows_unreported.Find(query)) {
        m.row_delta = *rows;
        w.rows_unreported.Erase(query);
      }
    }
    Charge(w, CostKind::kMsgPack, 1);
    Send(w, std::move(m));
  }
}

void SimCluster::SubmitPack(uint32_t src_node, uint32_t dst_node,
                            std::vector<Message> msgs, size_t bytes, SimTime at,
                            bool charge_sender, Worker* sender) {
  if (charge_sender && sender != nullptr) {
    // The send syscall runs on the worker's critical path. A credit-retry
    // flush can arrive with `at` ahead of the sender's clock; take the max
    // so the frame is never scheduled in the virtual past (identity when
    // `at` is the sender's own now, i.e. every non-retry flush).
    sender->now = std::max(sender->now, at) + config_.cost.frame_overhead_ns;
    at = sender->now;
  }
  if (config_.io_mode != IoMode::kTlcNlc) {
    std::vector<std::vector<Message>> packs = pack_pool_.Acquire();
    packs.push_back(std::move(msgs));
    SendFrame(src_node, dst_node, std::move(packs), bytes, at);
    return;
  }
  // Tier-2 node-level combining: packs submitted within the combining
  // window ride in one frame, sent by the node's network thread.
  EgressSlot& slot = egress_[src_node * config_.num_nodes + dst_node];
  slot.bytes += bytes;
  // The pack rides whole into the combiner: one vector move instead of one
  // Message move per element (~20 packs combine per frame window here).
  slot.pending.push_back(std::move(msgs));
  if (!slot.send_scheduled) {
    slot.send_scheduled = true;
    events_.Schedule(at + kNlcCombineWindowNs, [this, src_node, dst_node](SimTime t) {
      EgressSlot& s = egress_[src_node * config_.num_nodes + dst_node];
      s.send_scheduled = false;
      if (s.pending.empty()) return;
      std::vector<std::vector<Message>> out = pack_pool_.Acquire();
      out.swap(s.pending);
      size_t out_bytes = s.bytes;
      s.bytes = 0;
      // The network thread pays the syscall off the workers' critical path.
      SendFrame(src_node, dst_node, std::move(out), out_bytes,
                t + config_.cost.frame_overhead_ns);
    });
  }
}

void SimCluster::SendFrame(uint32_t src_node, uint32_t dst_node,
                           std::vector<std::vector<Message>> packs,
                           size_t bytes, SimTime at) {
  size_t wire_bytes = bytes + kFrameHeaderBytes;
  metrics_.OnFrame(src_node, dst_node, wire_bytes);
  SimTime& busy = LinkBusy(src_node, dst_node);
  SimTime start = std::max(at, busy);
  SimTime tx = config_.cost.TransmitNs(wire_bytes);
  if (link_degrade_ != 1.0) {
    tx = static_cast<SimTime>(static_cast<double>(tx) * link_degrade_);
  }
  SimTime end = start + tx;
  SimTime delivery = end + config_.cost.link_latency_ns;
  events_.Schedule(delivery, [this, batch = std::move(packs)](SimTime t) mutable {
    DeliverFrame(std::move(batch), t);
  });
}

void SimCluster::DeliverFrame(std::vector<std::vector<Message>> packs,
                              SimTime at) {
  // Push every message first, then wake each distinct destination once.
  // Identical schedule to waking per message: no worker is `running` during
  // frame delivery and all wakes share `at`, so ScheduleWake suppresses every
  // repeat after a destination's first — batching just skips the no-op calls.
  // The fault path keeps per-message delivery (drop/dup/delay decide wakes).
  wake_scratch_.clear();
  for (std::vector<Message>& msgs : packs) {
    for (Message& m : msgs) {
      if (fault_active_) {
        DeliverToWorker(std::move(m), at);
        continue;
      }
      const uint32_t dst_id = m.dst_worker;
      workers_[dst_id].inbox.push_back(std::move(m));
      if (std::find(wake_scratch_.begin(), wake_scratch_.end(), dst_id) ==
          wake_scratch_.end()) {
        wake_scratch_.push_back(dst_id);
      }
    }
    frame_pool_.Release(std::move(msgs));  // hollow shells; capacity recycled
  }
  pack_pool_.Release(std::move(packs));
  for (uint32_t dst : wake_scratch_) ScheduleWake(workers_[dst], at);
}

void SimCluster::Charge(Worker& w, CostKind kind, uint64_t count) {
  ExecContext ctx(this, &w, nullptr, w.id, ExecContext::Mode::kAsync, &w.now);
  ctx.Charge(kind, count);
}

uint32_t SimCluster::ExecWorkerFor(PartitionId p) {
  if (!tuning_.shared_state) return WorkerOfPartition(p);
  // Non-partitioned model: any worker on the data's node may execute the
  // task (shared storage); distribute round-robin, skipping crashed workers.
  uint32_t node = NodeOfWorker(WorkerOfPartition(p));
  for (uint32_t i = 0; i < config_.workers_per_node; ++i) {
    uint32_t slot = node_rr_[node]++ % config_.workers_per_node;
    uint32_t w = node * config_.workers_per_node + slot;
    if (!workers_[w].crashed) return w;
  }
  return WorkerOfPartition(p);  // whole node down: deliveries will be lost
}

std::string SimCluster::DescribeStuck() const {
  std::vector<const QueryState*> stuck;
  for (const auto& [id, qs] : queries_) {
    if (!qs.result.done) stuck.push_back(&qs);
  }
  std::sort(stuck.begin(), stuck.end(),
            [](const QueryState* a, const QueryState* b) {
              if (a->result.submit_time != b->result.submit_time) {
                return a->result.submit_time < b->result.submit_time;
              }
              return a->id < b->id;
            });
  std::string s = std::to_string(stuck.size()) + " unfinished queries";
  const size_t show = std::min<size_t>(stuck.size(), 4);
  if (show > 0) {
    s += ", oldest:";
    for (size_t i = 0; i < show; ++i) {
      const QueryState& q = *stuck[i];
      s += " q" + std::to_string(q.id) + "(submitted@" +
           std::to_string(q.result.submit_time) + ", scope " +
           std::to_string(q.scope);
      if (qos_active_ && !q.admitted) s += ", awaiting admission";
      s += ")";
    }
    if (stuck.size() > show) {
      s += " +" + std::to_string(stuck.size() - show) + " more";
    }
  }
  std::vector<const Worker*> deep;
  for (const Worker& w : workers_) {
    if (w.num_tasks > 0 || !w.inbox.empty() ||
        (spill_active_ && SpillBytesOf(w) > 0)) {
      deep.push_back(&w);
    }
  }
  std::sort(deep.begin(), deep.end(), [](const Worker* a, const Worker* b) {
    if (a->num_tasks != b->num_tasks) return a->num_tasks > b->num_tasks;
    return a->id < b->id;
  });
  if (!deep.empty()) {
    s += "; deepest queues:";
    const size_t dshow = std::min<size_t>(deep.size(), 4);
    for (size_t i = 0; i < dshow; ++i) {
      const Worker& w = *deep[i];
      s += " w" + std::to_string(w.id) + "(" + std::to_string(w.num_tasks) +
           " tasks";
      if (qos_active_) s += ", " + std::to_string(w.task_bytes_queued) + "B";
      if (spill_active_) {
        // Memory-pressure attribution: how much memo state is resident vs
        // parked on the tier, and which pressure state the worker is in.
        s += ", memo " + std::to_string(memos_[w.id].ResidentBytes()) +
             "B resident, spilled " + std::to_string(SpillBytesOf(w)) +
             "B, pressure " + PressureName(w.pressure);
      }
      s += ", inbox " + std::to_string(w.inbox.size()) + ")";
    }
  }
  return s;
}

// ---- BSP driver ---------------------------------------------------------------

Status SimCluster::RunBspToCompletion() {
  std::stable_sort(bsp_queue_.begin(), bsp_queue_.end(),
                   [](const BspSubmission& a, const BspSubmission& b) {
                     return a.at < b.at;
                   });
  for (const BspSubmission& sub : bsp_queue_) {
    QueryState& qs = queries_.at(sub.id);
    SimTime start = std::max(sub.at, bsp_clock_);
    if (qos_active_) {
      if (qs.result.done) continue;  // shed at submission
      if (!qs.admitted) {
        if (!admission_->ForceAdmit(qs.id, start)) {
          // Waited past its deadline in the backlog; never start it.
          if (check_ != nullptr) {
            check_->OnAdmission(qs.id, check::AdmissionEvent::kDequeueShed,
                                start);
          }
          qs.result.timed_out = true;
          ShedQuery(qs, start, "deadline exceeded while queued");
          continue;
        }
        if (check_ != nullptr) {
          check_->OnAdmission(qs.id, check::AdmissionEvent::kDequeueAdmit,
                              start);
        }
        qs.admitted = true;
        qs.result.admit_time = start;
        metrics_.latency("admission-wait").Record(start - qs.result.submit_time);
      }
      RunBspQuery(qs, start);
      bsp_clock_ = qs.result.complete_time;
      if (check_ != nullptr) {
        check_->OnAdmission(qs.id, check::AdmissionEvent::kComplete,
                            qs.result.complete_time);
      }
      admission_->OnCompleteNoDequeue();
      continue;
    }
    RunBspQuery(qs, start);
    bsp_clock_ = qs.result.complete_time;
  }
  bsp_queue_.clear();
  quiescent_time_ = bsp_clock_;
  if (check_ != nullptr) {
    check_->OnQuiescence(*this, quiescent_time_, /*drained=*/true);
  }
  if (pending_queries_ > 0) {
    return Status::Internal("BSP driver left unfinished queries");
  }
  return Status::OK();
}

void SimCluster::RunBspQuery(QueryState& qs, SimTime start) {
  const Plan& plan = *qs.plan;
  const uint32_t total = config_.total_workers();
  std::vector<SimTime> wt(total, start);
  std::vector<std::vector<Task>> cur(total), nxt(total);

  // Root placement (weights unused under BSP).
  for (uint16_t r : plan.roots()) {
    const Step& step = plan.step(r);
    std::vector<VertexId> ids = step.RootVertices();
    auto place = [&](PartitionId p, VertexId v) {
      Traverser t;
      t.vertex = v;
      t.step = r;
      t.scope = step.scope();
      cur[WorkerOfPartition(p)].push_back(Task{qs.id, p, std::move(t)});
    };
    if (!ids.empty()) {
      for (VertexId v : ids) place(graph_->PartitionOf(v), v);
    } else if (step.BroadcastRoot()) {
      for (PartitionId p = 0; p < config_.num_partitions(); ++p) {
        place(p, kInvalidVertex);
      }
    } else {
      place(static_cast<PartitionId>(qs.coordinator), kInvalidVertex);
    }
  }

  uint32_t scope = 0;
  auto route_emissions = [&](uint32_t src_worker, std::vector<Traverser>& emitted,
                             PartitionId current) {
    // Per-round exchange bookkeeping: per destination node, bytes combined
    // into one frame per (worker, dst-node) pair (superstep batching).
    std::vector<size_t> bytes_to_node(config_.num_nodes, 0);
    for (Traverser& t : emitted) {
      const Step& target = plan.step(t.step);
      t.scope = target.scope();
      PartitionId route = target.Route(t, graph_->partitioner());
      PartitionId p = route == kLocalRoute ? current : route;
      uint32_t dst = WorkerOfPartition(p);
      if (dst != src_worker) {
        metrics_.net().messages_by_kind[static_cast<int>(MessageKind::kTraverserBatch)]++;
        metrics_.OnPairMessage(src_worker, dst);
        // BSP workers serialize/deserialize exchanged traversers too; charge
        // both ends to the sending round (superstep batching amortizes the
        // rest of the I/O path).
        wt[src_worker] += config_.cost.msg_pack_ns + config_.cost.msg_unpack_ns;
        if (NodeOfWorker(dst) == NodeOfWorker(src_worker)) {
          metrics_.net().local_messages++;
        } else {
          metrics_.net().remote_messages++;
          bytes_to_node[NodeOfWorker(dst)] += t.WireSize();
        }
      }
      nxt[dst].push_back(Task{qs.id, p, std::move(t)});
    }
    emitted.clear();
    SimTime max_delivery = wt[src_worker];
    for (uint32_t n = 0; n < config_.num_nodes; ++n) {
      if (bytes_to_node[n] == 0) continue;
      metrics_.OnFrame(NodeOfWorker(src_worker), n,
                       bytes_to_node[n] + kFrameHeaderBytes);
      SimTime& busy = LinkBusy(NodeOfWorker(src_worker), n);
      SimTime tx_start = std::max(wt[src_worker] + config_.cost.frame_overhead_ns, busy);
      SimTime end = tx_start + config_.cost.TransmitNs(bytes_to_node[n] + kFrameHeaderBytes);
      busy = end;
      max_delivery = std::max(max_delivery, end + config_.cost.link_latency_ns);
    }
    return max_delivery;
  };

  while (true) {
    // Run supersteps until the current scope's frontier drains.
    bool any = true;
    while (any) {
      any = false;
      SimTime round_end = 0;
      for (uint32_t w = 0; w < total; ++w) {
        if (cur[w].empty()) {
          round_end = std::max(round_end, wt[w]);
          continue;
        }
        any = true;
        ExecContext ctx(this, &workers_[w], &qs, static_cast<PartitionId>(w),
                        ExecContext::Mode::kBsp, &wt[w]);
        for (Task& task : cur[w]) {
          ExecContext task_ctx(this, &workers_[w], &qs, task.partition,
                               ExecContext::Mode::kBsp, &wt[w]);
          plan.step(task.trav.step).Execute(std::move(task.trav), task_ctx);
          ++workers_[w].tasks_executed;
          for (Traverser& t : task_ctx.emitted()) ctx.emitted().push_back(std::move(t));
        }
        cur[w].clear();
        SimTime delivery = route_emissions(w, ctx.emitted(), static_cast<PartitionId>(w));
        round_end = std::max(round_end, delivery);
      }
      if (!any) break;
      // Global barrier: everyone waits for the slowest worker and the last
      // in-flight frame (the straggler effect of Fig. 2b).
      round_end += config_.cost.barrier_ns;
      for (uint32_t w = 0; w < total; ++w) wt[w] = round_end;
      for (uint32_t w = 0; w < total; ++w) {
        cur[w] = std::move(nxt[w]);
        nxt[w].clear();
      }
    }

    SimTime t_quiesce = *std::max_element(wt.begin(), wt.end());
    uint16_t closer = plan.scope_closer(scope);
    if (closer == kNoStep) {
      qs.result.complete_time = t_quiesce;
      break;
    }
    const Step& st = plan.step(closer);
    qs.collect = CollectMergeState{};
    for (uint32_t w = 0; w < total; ++w) {
      wt[w] = t_quiesce + config_.cost.finalize_ns;
      ExecContext ctx(this, &workers_[w], &qs, static_cast<PartitionId>(w),
                      ExecContext::Mode::kBsp, &wt[w]);
      st.OnFinalize(ctx);
      if (!st.NeedsCollect()) {
        SimTime delivery = route_emissions(w, ctx.emitted(), static_cast<PartitionId>(w));
        wt[w] = std::max(wt[w], delivery);
        for (uint32_t d = 0; d < total; ++d) {
          if (!nxt[d].empty()) {
            cur[d].insert(cur[d].end(), std::make_move_iterator(nxt[d].begin()),
                          std::make_move_iterator(nxt[d].end()));
            nxt[d].clear();
          }
        }
      }
    }
    if (st.NeedsCollect()) {
      std::vector<Traverser> continuations;
      st.OnCollectComplete(qs.collect, &qs.result.rows, &continuations);
      SimTime t = *std::max_element(wt.begin(), wt.end()) +
                  config_.cost.barrier_ns;  // collect barrier
      for (uint32_t w = 0; w < total; ++w) wt[w] = t;
      if (continuations.empty()) {
        qs.result.complete_time = t;
        break;
      }
      for (Traverser& t2 : continuations) {
        const Step& target = plan.step(t2.step);
        t2.scope = target.scope();
        PartitionId route = target.Route(t2, graph_->partitioner());
        PartitionId p = route == kLocalRoute
                            ? static_cast<PartitionId>(qs.coordinator)
                            : route;
        cur[WorkerOfPartition(p)].push_back(Task{qs.id, p, std::move(t2)});
      }
    }
    ++scope;
  }

  if (qs.plan->result_limit() > 0 &&
      qs.result.rows.size() > qs.plan->result_limit()) {
    // BSP cannot cancel mid-superstep; it truncates at the end.
    qs.result.rows.resize(qs.plan->result_limit());
  }
  qs.result.done = true;
  --pending_queries_;
  metrics_.OnQueryDone(qs.result.LatencyNanos(), /*failed=*/false,
                       /*timed_out=*/false);
  if (tracer_.enabled()) {
    tracer_.Span("query " + std::to_string(qs.id), "query",
                 qs.result.submit_time, qs.result.complete_time,
                 NodeOfWorker(qs.coordinator), qs.coordinator, qs.id, 0,
                 "\"status\":\"ok\",\"rows\":" +
                     std::to_string(qs.result.rows.size()) + ",\"retries\":0");
  }
  for (uint32_t p = 0; p < config_.num_partitions(); ++p) {
    memos_[p].ClearQuery(qs.id);
  }
  if (check_ != nullptr) {
    check_->OnQueryComplete(ProbeOf(qs), qs.result.complete_time);
  }
  FireCompletionCallback(qs, qs.result.complete_time);
}

}  // namespace graphdance
