#ifndef GRAPHDANCE_RUNTIME_CONFIG_H_
#define GRAPHDANCE_RUNTIME_CONFIG_H_

#include <cstdint>
#include <limits>
#include <string>

#include "qos/qos.h"
#include "sim/cost_model.h"
#include "sim/fault.h"

namespace graphdance {

/// I/O scheduling modes for the two-tier message channel (paper §IV-B,
/// evaluated in Fig. 12).
enum class IoMode : uint8_t {
  kSyncSend = 0,  // every message is its own frame (per-frame syscall each)
  kTlcOnly,       // tier-1 thread-level combining only
  kTlcNlc,        // tier-1 + tier-2 node-level combining (full GraphDance)
};

/// Execution engines. All engines run the same step implementations; they
/// differ in scheduling, state sharing and coordination costs.
enum class EngineKind : uint8_t {
  kAsync = 0,   // GraphDance: asynchronous PSTM runtime
  kBsp,         // superstep execution with global barriers (TigerGraph-style)
  kShared,      // non-partitioned graph model: node-shared state + locks
  kGaiaSim,     // dataflow baseline: per-worker operators, centralized agg
  kBanyanSim,   // scoped-dataflow baseline: per-worker operators
};

const char* EngineKindName(EngineKind kind);

/// Per-engine cost/behaviour knobs (see DESIGN.md §1 for the rationale of
/// each baseline's tuning).
struct EngineTuning {
  /// Extra scheduling cost charged per traverser task (dataflow operators).
  uint64_t per_task_sched_extra_ns = 0;
  /// Per-query setup cost, multiplied by num_workers * num_steps (dataflow
  /// systems instantiate every operator in every worker).
  uint64_t per_worker_setup_ns = 0;
  /// Route all blocking-step accumulation to worker 0 (GAIA's centralized
  /// final aggregation).
  bool centralized_agg = false;
  /// Node-shared graph/memo state guarded by a per-node lock, with a NUMA
  /// penalty on data access (the non-partitioned baseline).
  bool shared_state = false;

  static EngineTuning For(EngineKind kind);
};

/// Full configuration of a simulated GraphDance cluster.
struct ClusterConfig {
  uint32_t num_nodes = 1;
  uint32_t workers_per_node = 4;

  EngineKind engine = EngineKind::kAsync;
  IoMode io_mode = IoMode::kTlcNlc;

  /// Tier-1 buffer flush threshold (paper uses 8 KB).
  size_t flush_threshold_bytes = 8192;

  /// Weight coalescing (paper §IV-A(a)); disable to reproduce Fig. 10/11.
  bool weight_coalescing = true;

  /// Traverser bulking (Rodriguez 2015): collapse equivalent traversers —
  /// same (vertex, step, hop, scope, vars, path) — into one carrying a bulk
  /// multiplicity and the summed weight. Applied in the tier-1 send buffer,
  /// in worker task queues before dispatch, and honoured by every step.
  /// Disable for the bench_ablation_bulking baseline.
  bool traverser_bulking = true;

  /// Tasks processed per worker quantum before yielding to the event loop.
  uint32_t quantum_tasks = 128;

  /// Schedule traversers with shorter history trajectories first (paper
  /// §III-B: reduces redundant re-expansion after distance improvements).
  /// Disable for the FIFO ablation.
  bool shortest_first_scheduling = true;

  /// CPU efficiency multiplier for this deployment (virtual charges divide
  /// by it). Used by the single-node GraphScope stand-in: its LDBC queries
  /// are hand-optimized C++ procedures rather than a general traversal
  /// machine, which the paper's own numbers put at ~3.5x per-core efficiency
  /// (58% lower latency on 1/8th the hardware). Default 1.0.
  double cpu_speedup = 1.0;

  /// Simulated per-node memory capacity; datasets larger than this suffer a
  /// swap penalty on data access (single-node study, §V-A3). Default: no cap.
  uint64_t memory_cap_bytes = std::numeric_limits<uint64_t>::max();
  double swap_penalty = 40.0;

  CostModel cost;
  uint64_t seed = 1;

  /// Fault injection plan: probabilistic and scripted message drops /
  /// duplicates / delays, worker crashes and link degradation, all drawn
  /// from a seeded PRNG so every fault schedule is deterministic and
  /// replayable. See sim/fault.h.
  FaultPlan fault;

  /// Compatibility shim for the original single-knob injector: drop the
  /// N-th remote message (1-based; 0 = disabled). Translated into
  /// `fault.DropNth(n)` by the cluster constructor.
  uint64_t fault_drop_remote_message = 0;

  /// Recovery protocol knobs (active only when the fault plan is). The
  /// coordinator watches each query's virtual-time progress; a query that
  /// makes no progress for `progress_timeout_ns` is presumed to have lost
  /// weight (dropped message / crashed worker) and is resubmitted with
  /// exponential backoff, up to `max_retries` attempts. Set
  /// `fault_recovery = false` to keep the old detect-and-report behaviour
  /// (lost weight surfaces as kInternal from RunToCompletion).
  bool fault_recovery = true;
  SimTime progress_timeout_ns = 50'000'000;  // 50 virtual ms
  uint32_t max_retries = 3;
  SimTime retry_backoff_ns = 1'000'000;  // first retry delay; doubles each try

  /// Record per-query virtual-time spans (attempts, scopes, retries, crash /
  /// restart instants) into the cluster's Tracer for chrome://tracing export
  /// (CLI: --trace-out). Pure observation: enabling it never changes the
  /// event schedule. See obs/trace.h.
  bool trace = false;

  /// Resource governance (DESIGN.md §11): admission control with weighted
  /// fairness and load shedding, credit-based inter-node flow control, and
  /// per-worker task/memo byte budgets. Default-disabled; with `qos.enabled
  /// == false` the event schedule is byte-identical to pre-QoS builds.
  qos::QosConfig qos;

  /// Schedule-space exploration (check subsystem, DESIGN.md §10): a seeded
  /// same-timestamp tie-break permutation plus bounded latency jitter in the
  /// event queue. All-zero (the default) pins the historical insertion-order
  /// schedule byte-for-byte; each nonzero seed deterministically replays one
  /// distinct legal interleaving of the same workload. See sim/event_queue.h.
  ScheduleExploration explore;

  uint32_t total_workers() const { return num_nodes * workers_per_node; }
  /// One partition per worker (shared-nothing ownership).
  uint32_t num_partitions() const { return total_workers(); }
};

}  // namespace graphdance

#endif  // GRAPHDANCE_RUNTIME_CONFIG_H_
