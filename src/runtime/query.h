#ifndef GRAPHDANCE_RUNTIME_QUERY_H_
#define GRAPHDANCE_RUNTIME_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pstm/memo.h"
#include "pstm/plan.h"
#include "sim/event_queue.h"

namespace graphdance {

/// The outcome of one query: its result rows plus timing.
struct QueryResult {
  uint64_t query_id = 0;
  std::vector<Row> rows;
  SimTime submit_time = 0;
  SimTime complete_time = 0;
  bool done = false;
  /// True when the query was aborted at its deadline (paper §II-A: systems
  /// abort interactive queries that miss their time budget). `rows` holds
  /// whatever had been collected when the deadline fired.
  bool timed_out = false;
  /// True when recovery gave up: the query exhausted `max_retries` attempts
  /// (progress timeouts / coordinator crashes). `rows` is cleared — a failed
  /// query never reports a partial answer as if it were complete — and
  /// `failure_reason` says why. Never set on the fault-free path.
  bool failed = false;
  /// Number of times the recovery protocol resubmitted this query.
  uint32_t retries = 0;
  std::string failure_reason;

  /// End-to-end virtual latency in microseconds.
  double LatencyMicros() const {
    return static_cast<double>(complete_time - submit_time) / 1000.0;
  }
};

/// Cluster-wide network statistics (drives Fig. 11 and sanity checks).
struct NetStats {
  uint64_t messages_by_kind[8] = {0};
  uint64_t local_messages = 0;   // same-node shared-memory deliveries
  uint64_t remote_messages = 0;  // messages carried inside frames
  uint64_t frames = 0;           // network frames (syscalls) sent
  uint64_t bytes = 0;            // bytes on the wire

  uint64_t progress_messages() const;
  uint64_t other_messages() const;
  void Clear() { *this = NetStats{}; }
};

}  // namespace graphdance

#endif  // GRAPHDANCE_RUNTIME_QUERY_H_
