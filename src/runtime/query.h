#ifndef GRAPHDANCE_RUNTIME_QUERY_H_
#define GRAPHDANCE_RUNTIME_QUERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "pstm/memo.h"
#include "pstm/plan.h"
#include "sim/event_queue.h"

namespace graphdance {

/// The outcome of one query: its result rows plus timing.
struct QueryResult {
  uint64_t query_id = 0;
  std::vector<Row> rows;
  SimTime submit_time = 0;
  SimTime complete_time = 0;
  bool done = false;
  /// True when the query was aborted at its deadline (paper §II-A: systems
  /// abort interactive queries that miss their time budget). `rows` holds
  /// whatever had been collected when the deadline fired.
  bool timed_out = false;
  /// True when recovery gave up: the query exhausted `max_retries` attempts
  /// (progress timeouts / coordinator crashes). `rows` is cleared — a failed
  /// query never reports a partial answer as if it were complete — and
  /// `failure_reason` says why. Never set on the fault-free path.
  bool failed = false;
  /// True when QoS governance rejected or aborted the query (admission queue
  /// full, backlog wait past the deadline, or memo budget exceeded). Always
  /// paired with `failed`; `failure_reason` says which limit was hit. Never
  /// set when `ClusterConfig::qos` is disabled.
  bool resource_exhausted = false;
  /// Number of times the recovery protocol resubmitted this query.
  uint32_t retries = 0;
  std::string failure_reason;
  /// When QoS admission queued this query, the virtual time it was admitted
  /// (0 = admitted immediately at submit, or QoS off). `admit_time -
  /// submit_time` is the backlog wait the admission histograms record.
  SimTime admit_time = 0;

  /// End-to-end virtual latency in nanoseconds (what the cluster's latency
  /// histograms record) and in microseconds (for printing).
  SimTime LatencyNanos() const { return complete_time - submit_time; }
  double LatencyMicros() const {
    return static_cast<double>(LatencyNanos()) / 1000.0;
  }
};

// NetStats lives in obs/metrics.h (owned by the metrics registry); included
// above so existing users of this header keep compiling unchanged.

}  // namespace graphdance

#endif  // GRAPHDANCE_RUNTIME_QUERY_H_
