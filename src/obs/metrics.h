#ifndef GRAPHDANCE_OBS_METRICS_H_
#define GRAPHDANCE_OBS_METRICS_H_

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/message.h"
#include "pstm/step.h"
#include "sim/event_queue.h"
#include "sim/fault.h"

namespace graphdance {

/// Cluster-wide network statistics (drives Fig. 11 and sanity checks). The
/// canonical instance is owned by obs::MetricsRegistry; SimCluster's
/// net_stats() accessor remains as a thin view into it.
struct NetStats {
  uint64_t messages_by_kind[8] = {0};
  uint64_t local_messages = 0;   // same-node shared-memory deliveries
  uint64_t remote_messages = 0;  // messages carried inside frames
  uint64_t frames = 0;           // network frames (syscalls) sent
  uint64_t bytes = 0;            // bytes on the wire

  uint64_t progress_messages() const;
  uint64_t other_messages() const;
  void Merge(const NetStats& other);
  void Clear() { *this = NetStats{}; }
};

namespace obs {

inline constexpr uint32_t kNumStepKinds =
    static_cast<uint32_t>(StepKind::kEmit) + 1;

/// A log-bucketed latency histogram (HDR-style): every power-of-two range is
/// split into 32 sub-buckets, giving a worst-case relative quantile error of
/// 1/32 ≈ 3.1%. Values below 32 are recorded exactly. Count, sum, min and
/// max are kept exactly, so Avg() has no bucketing error. Values are plain
/// uint64 in caller-chosen units (the cluster records virtual nanoseconds).
class LogHistogram {
 public:
  void Record(uint64_t v) {
    uint32_t b = BucketOf(v);
    if (buckets_.size() <= b) buckets_.resize(b + 1, 0);
    buckets_[b]++;
    count_++;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  uint64_t Count() const { return count_; }
  uint64_t Sum() const { return sum_; }
  uint64_t Min() const { return min_; }
  uint64_t Max() const { return max_; }
  double Avg() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Nearest-rank quantile, q in (0, 1]. Returns the upper bound of the
  /// bucket holding the rank, clamped to the exact recorded maximum.
  uint64_t Percentile(double q) const;
  uint64_t P50() const { return Percentile(0.50); }
  uint64_t P95() const { return Percentile(0.95); }
  uint64_t P99() const { return Percentile(0.99); }

  void Merge(const LogHistogram& other);

  /// "count=N avg=A p50=.. p95=.. p99=.. max=.." (deterministic formatting).
  std::string ToString() const;

  /// Exposed for tests: the bucket index a value lands in and the largest
  /// value that bucket can hold.
  static uint32_t BucketOf(uint64_t v) {
    if (v < kSub) return static_cast<uint32_t>(v);
    uint32_t e = 63 - static_cast<uint32_t>(__builtin_clzll(v));
    uint32_t sub = static_cast<uint32_t>((v >> (e - kSubBits)) & (kSub - 1));
    return (e - kSubBits + 1) * kSub + sub;
  }
  static uint64_t UpperBound(uint32_t b) {
    if (b < kSub) return b;
    uint32_t shift = b / kSub - 1;  // == e - kSubBits
    uint64_t sub = b % kSub;
    return ((kSub + sub + 1) << shift) - 1;
  }

 private:
  static constexpr uint32_t kSubBits = 5;
  static constexpr uint32_t kSub = 1u << kSubBits;  // sub-buckets per octave

  std::vector<uint64_t> buckets_;  // grown lazily to the highest bucket seen
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// Frame/byte counters of one directed node->node link.
struct LinkStats {
  uint64_t frames = 0;
  uint64_t bytes = 0;
};

/// Per-virtual-worker counters, aggregated cluster-wide by Snapshot().
struct WorkerMetrics {
  uint64_t steps_in[kNumStepKinds] = {0};  // traversers entering each step kind
  uint64_t weight_finishes = 0;            // Finish() calls (pre-coalescing)
  uint64_t weight_reports = 0;             // kWeightReport messages produced
  uint64_t bulk_merges = 0;                // traverser-bulking merge operations
  uint64_t traversers_bulked = 0;          // traversers absorbed by merging
};

/// QoS / resource-governance counters (DESIGN.md §11). Aggregated by
/// SimCluster::MetricsSnapshot() from the admission controller, the link
/// credit meters and the per-worker byte ledgers; all zero when QoS is off.
struct QosSnapshot {
  // Admission ledger.
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t cancelled = 0;
  uint64_t peak_queued = 0;
  // Flow control.
  uint64_t flushes_held = 0;      // tier-1 flush attempts blocked on credits
  uint64_t ingest_deferrals = 0;  // inbox ingestions deferred by task budget
  uint64_t credit_bytes_consumed = 0;
  uint64_t credit_bytes_returned = 0;
  // Budgets.
  uint64_t peak_task_bytes = 0;  // max queued task bytes on any one worker
  uint64_t peak_memo_bytes = 0;  // max live memo bytes on any one partition
  uint64_t memo_aborts = 0;      // queries aborted by the memo budget
  // Spill manager (DESIGN.md §12); all zero when qos.spill is off.
  uint64_t spill_memo_bytes_written = 0;  // memo bytes evicted to the tier
  uint64_t spill_memo_bytes_read = 0;     // memo bytes faulted back in
  uint64_t spill_memo_bytes_dropped = 0;  // spilled memo discarded
  uint64_t spill_memo_records = 0;        // memo eviction operations
  uint64_t spill_memo_faults = 0;         // memo fault-in operations
  uint64_t spill_task_bytes_written = 0;  // task bytes evicted to the tier
  uint64_t spill_task_bytes_read = 0;     // task bytes reloaded
  uint64_t spill_task_bytes_dropped = 0;  // spilled tasks crash-wiped
  uint64_t spill_peak_bytes = 0;          // max tier occupancy on any worker
  uint64_t spill_pressure_transitions = 0;  // entries into the spilling state
  uint64_t spill_last_resort = 0;           // entries into last-resort aborts

  void Merge(const QosSnapshot& other);
};

/// Streaming-ingest counters (DESIGN.md §15). Maintained by
/// stream::StreamIngestor and attached to the cluster via
/// SimCluster::AttachStreamStats(); all zero when no stream is attached.
struct StreamSnapshot {
  uint64_t batches_scheduled = 0;  // update batches handed to the ingestor
  uint64_t batches_applied = 0;    // batches fully applied (committed)
  uint64_t ops_applied = 0;        // individual ops written into TELs
  uint64_t edges_added = 0;
  uint64_t edges_deleted = 0;
  uint64_t vertices_added = 0;
  uint64_t props_set = 0;
  uint64_t batch_retries = 0;      // partition groups re-tried past a crash
  uint64_t standing_queries = 0;   // continuous queries registered
  uint64_t standing_runs = 0;      // incremental re-evaluations launched
  uint64_t standing_conflated = 0; // commits folded into a pending re-run
  uint64_t rows_emitted = 0;       // standing-query delta rows (additions)
  uint64_t rows_retracted = 0;     // standing-query delta rows (retractions)
  uint64_t last_commit_ts = 0;     // LCT: highest fully-visible batch ts

  void Merge(const StreamSnapshot& other);
};

/// Distributed-transaction counters (DESIGN.md §16). Maintained by
/// txn::DistTxnManager and attached to the cluster via
/// SimCluster::AttachTxnStats(); all zero when no manager is attached.
struct TxnSnapshot {
  uint64_t begun = 0;               // transactions opened
  uint64_t committed = 0;           // decided + fully applied (LCT advanced)
  uint64_t aborted = 0;             // final aborts (retries exhausted / Abort)
  uint64_t retried = 0;             // attempts restarted after a conflict
  uint64_t conflicts_locked = 0;    // prepare rejected: anchor lock held
  uint64_t locks_claimed = 0;       // write locks taken at prepare
  uint64_t validation_failed = 0;   // prepare rejected: version > snapshot
  uint64_t prepares_sent = 0;       // round-1 prepare messages
  uint64_t votes_yes = 0;
  uint64_t votes_no = 0;
  uint64_t applies_sent = 0;        // round-2 commit-apply messages
  uint64_t applies_acked = 0;
  uint64_t apply_retries = 0;       // watchdog re-sends past a crash
  uint64_t crashes_injected = 0;    // chaos crashes fired by the crash plan
  uint64_t crash_wipes = 0;         // partition lock tables wiped by a crash
  uint64_t last_commit_ts = 0;      // LCT: contiguous fully-applied prefix

  void Merge(const TxnSnapshot& other);
};

/// One unified, deterministic view of every runtime metric. Subsumes
/// NetStats and FaultStats (both kept as members so existing call sites stay
/// thin views), plus per-step traverser counts, memo behavior, weight-report
/// coalescing, per-link traffic, and latency histograms. Everything is
/// derived from the deterministic event schedule, so two same-seed runs
/// produce identical snapshots (ToString() is byte-identical).
struct MetricsSnapshot {
  NetStats net;
  FaultStats fault;

  uint64_t steps_in[kNumStepKinds] = {0};
  uint64_t tasks_executed = 0;

  uint64_t memo_hits = 0;     // Find/GetOrCreate found existing state
  uint64_t memo_misses = 0;   // lookups that found nothing
  uint64_t memo_created = 0;  // states materialized
  uint64_t memo_cleared = 0;  // states dropped (query end or crash)

  uint64_t weight_finishes = 0;  // Finish() calls before coalescing
  uint64_t weight_reports = 0;   // kWeightReport messages after coalescing

  uint64_t bulk_merges = 0;       // traverser-bulking merges (send + receive)
  uint64_t traversers_bulked = 0; // traversers absorbed into a bulk carrier

  uint64_t queries_submitted = 0;
  uint64_t queries_completed = 0;  // includes timed-out/failed completions
  uint64_t queries_failed = 0;
  uint64_t queries_timed_out = 0;

  /// Invariant-checker counters (check/invariants.h). Populated only when a
  /// CheckHarness is attached to the cluster; checker_attached gates the
  /// ToString() section so unchecked runs stay byte-identical to pre-checker
  /// builds.
  bool checker_attached = false;
  uint64_t checker_trips = 0;
  std::map<std::string, uint64_t> checker_trips_by;

  /// QoS counters (qos/qos.h). qos_enabled gates the ToString() section the
  /// same way checker_attached does, so governance-off snapshots stay
  /// byte-identical to pre-QoS builds.
  bool qos_enabled = false;
  QosSnapshot qos;
  /// Gates the spill ToString() section separately from qos_enabled, so
  /// qos-on / spill-off snapshots stay byte-identical to pre-spill builds.
  bool spill_enabled = false;

  /// Streaming-ingest counters (stream/stream.h). stream_enabled gates the
  /// ToString() section like the booleans above, so stream-off snapshots
  /// stay byte-identical to pre-streaming builds.
  bool stream_enabled = false;
  StreamSnapshot stream;

  /// Distributed-transaction counters (txn/dist_txn.h). txn_enabled gates the
  /// ToString() section like the booleans above, so txn-off snapshots stay
  /// byte-identical to pre-transaction builds.
  bool txn_enabled = false;
  TxnSnapshot txn;

  uint32_t num_nodes = 0;
  uint32_t num_workers = 0;
  std::vector<LinkStats> links;          // num_nodes^2, src-major
  std::vector<uint64_t> pair_messages;   // num_workers^2, src-major

  /// Named virtual-latency histograms in nanoseconds. The cluster records
  /// every query under "query"; callers (LDBC driver, benches) add their own
  /// labels via MetricsRegistry::latency().
  std::map<std::string, LogHistogram> latency;

  const LinkStats& Link(uint32_t src_node, uint32_t dst_node) const {
    return links[src_node * num_nodes + dst_node];
  }
  uint64_t PairMessages(uint32_t src_worker, uint32_t dst_worker) const {
    return pair_messages[src_worker * num_workers + dst_worker];
  }
  /// Looks up a latency histogram, nullptr when the label was never recorded.
  const LogHistogram* Latency(const std::string& name) const;

  void Merge(const MetricsSnapshot& other);

  /// Deterministic human-readable dump (the `--metrics` CLI output).
  std::string ToString() const;
};

/// The cluster's metrics sink. Pure observation: recording never charges
/// virtual time, schedules events, or otherwise perturbs execution — the
/// event schedule is identical whether or not anything reads the registry.
class MetricsRegistry {
 public:
  void Init(uint32_t num_workers, uint32_t num_nodes) {
    num_workers_ = num_workers;
    num_nodes_ = num_nodes;
    workers_.assign(num_workers, WorkerMetrics{});
    links_.assign(static_cast<size_t>(num_nodes) * num_nodes, LinkStats{});
    pair_messages_.assign(static_cast<size_t>(num_workers) * num_workers, 0);
  }

  WorkerMetrics& worker(uint32_t id) { return workers_[id]; }
  NetStats& net() { return net_; }
  const NetStats& net() const { return net_; }

  void OnFrame(uint32_t src_node, uint32_t dst_node, uint64_t wire_bytes) {
    net_.frames++;
    net_.bytes += wire_bytes;
    LinkStats& l = links_[src_node * num_nodes_ + dst_node];
    l.frames++;
    l.bytes += wire_bytes;
  }

  void OnPairMessage(uint32_t src_worker, uint32_t dst_worker) {
    pair_messages_[src_worker * num_workers_ + dst_worker]++;
  }

  /// A buffered message was absorbed into another by traverser bulking and
  /// will never reach the wire: retract the per-message counters Send()
  /// already bumped, so message counts stay wire-accurate.
  void OnSendMerged(uint32_t src_worker, uint32_t dst_worker, MessageKind kind) {
    net_.messages_by_kind[static_cast<int>(kind)]--;
    net_.remote_messages--;
    pair_messages_[src_worker * num_workers_ + dst_worker]--;
  }

  /// Named latency histogram, created on first use (deterministic: std::map).
  LogHistogram& latency(const std::string& name) { return latency_[name]; }

  void OnQuerySubmitted() { queries_submitted_++; }
  void OnQueryDone(SimTime latency_ns, bool failed, bool timed_out) {
    queries_completed_++;
    if (failed) queries_failed_++;
    if (timed_out) queries_timed_out_++;
    latency_["query"].Record(latency_ns);
  }

  /// Aggregates per-worker counters with the cluster-wide ones into one
  /// snapshot. FaultStats / memo counters / tasks_executed live outside the
  /// registry; SimCluster::MetricsSnapshot() fills them in.
  MetricsSnapshot Snapshot() const;

 private:
  uint32_t num_workers_ = 0;
  uint32_t num_nodes_ = 0;
  NetStats net_;
  std::vector<WorkerMetrics> workers_;
  std::vector<LinkStats> links_;
  std::vector<uint64_t> pair_messages_;
  std::map<std::string, LogHistogram> latency_;
  uint64_t queries_submitted_ = 0;
  uint64_t queries_completed_ = 0;
  uint64_t queries_failed_ = 0;
  uint64_t queries_timed_out_ = 0;
};

}  // namespace obs
}  // namespace graphdance

#endif  // GRAPHDANCE_OBS_METRICS_H_
