#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace graphdance {
namespace obs {

namespace {

/// Virtual ns -> trace_event microseconds with 3 decimals, fixed-point so
/// output is byte-identical across runs and platforms.
void AppendMicros(std::string* out, SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03" PRIu64, ns / 1000,
                ns % 1000);
  *out += buf;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

void Tracer::Span(std::string name, const char* category, SimTime start_ns,
                  SimTime end_ns, uint32_t node, uint32_t worker,
                  uint64_t query, uint32_t attempt, std::string extra_args) {
  if (!enabled_) return;
  if (end_ns < start_ns) end_ns = start_ns;
  events_.push_back(Event{std::move(name), category, 'X', start_ns,
                          end_ns - start_ns, node, worker, query, attempt,
                          std::move(extra_args)});
}

void Tracer::Instant(std::string name, const char* category, SimTime at_ns,
                     uint32_t node, uint32_t worker, uint64_t query,
                     uint32_t attempt, std::string extra_args) {
  if (!enabled_) return;
  events_.push_back(Event{std::move(name), category, 'i', at_ns, 0, node,
                          worker, query, attempt, std::move(extra_args)});
}

void Tracer::Meta(const char* what, uint32_t node, uint32_t worker,
                  std::string label) {
  if (!enabled_) return;
  events_.push_back(Event{what, "__metadata", 'M', 0, 0, node, worker, 0, 0,
                          "\"name\":\"" + label + "\""});
}

std::string Tracer::ToJson() const {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    AppendEscaped(&out, e.name);
    out += "\",\"cat\":\"";
    out += e.category;
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"ts\":";
    AppendMicros(&out, e.ts);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      AppendMicros(&out, e.dur);
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    out += ",\"pid\":" + std::to_string(e.node);
    out += ",\"tid\":" + std::to_string(e.worker);
    out += ",\"args\":{";
    if (e.phase == 'M') {
      out += e.extra;
    } else {
      out += "\"query\":" + std::to_string(e.query);
      out += ",\"attempt\":" + std::to_string(e.attempt);
      if (!e.extra.empty()) {
        out += ",";
        out += e.extra;
      }
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteJson(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  std::string json = ToJson();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return f.good();
}

}  // namespace obs
}  // namespace graphdance
