#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "net/message.h"

namespace graphdance {

uint64_t NetStats::progress_messages() const {
  return messages_by_kind[static_cast<int>(MessageKind::kWeightReport)];
}

uint64_t NetStats::other_messages() const {
  uint64_t total = 0;
  for (int k = 0; k < static_cast<int>(MessageKind::kNumKinds); ++k) {
    if (k == static_cast<int>(MessageKind::kWeightReport)) continue;
    total += messages_by_kind[k];
  }
  return total;
}

void NetStats::Merge(const NetStats& other) {
  for (int k = 0; k < 8; ++k) messages_by_kind[k] += other.messages_by_kind[k];
  local_messages += other.local_messages;
  remote_messages += other.remote_messages;
  frames += other.frames;
  bytes += other.bytes;
}

namespace obs {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

/// Fixed-point double formatting (two decimals) so ToString() is
/// byte-identical across runs and platforms.
std::string F2(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

uint64_t LogHistogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the smallest bucket whose cumulative count reaches rank.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) rank++;
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  for (uint32_t b = 0; b < buckets_.size(); ++b) {
    cum += buckets_[b];
    if (cum >= rank) return std::min(UpperBound(b), max_);
  }
  return max_;
}

void LogHistogram::Merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.size() < other.buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t b = 0; b < other.buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::string LogHistogram::ToString() const {
  return "count=" + U64(count_) + " avg=" + F2(Avg()) + " p50=" + U64(P50()) +
         " p95=" + U64(P95()) + " p99=" + U64(P99()) + " max=" + U64(max_);
}

void QosSnapshot::Merge(const QosSnapshot& other) {
  submitted += other.submitted;
  admitted += other.admitted;
  shed += other.shed;
  cancelled += other.cancelled;
  peak_queued = std::max(peak_queued, other.peak_queued);
  flushes_held += other.flushes_held;
  ingest_deferrals += other.ingest_deferrals;
  credit_bytes_consumed += other.credit_bytes_consumed;
  credit_bytes_returned += other.credit_bytes_returned;
  peak_task_bytes = std::max(peak_task_bytes, other.peak_task_bytes);
  peak_memo_bytes = std::max(peak_memo_bytes, other.peak_memo_bytes);
  memo_aborts += other.memo_aborts;
  spill_memo_bytes_written += other.spill_memo_bytes_written;
  spill_memo_bytes_read += other.spill_memo_bytes_read;
  spill_memo_bytes_dropped += other.spill_memo_bytes_dropped;
  spill_memo_records += other.spill_memo_records;
  spill_memo_faults += other.spill_memo_faults;
  spill_task_bytes_written += other.spill_task_bytes_written;
  spill_task_bytes_read += other.spill_task_bytes_read;
  spill_task_bytes_dropped += other.spill_task_bytes_dropped;
  spill_peak_bytes = std::max(spill_peak_bytes, other.spill_peak_bytes);
  spill_pressure_transitions += other.spill_pressure_transitions;
  spill_last_resort += other.spill_last_resort;
}

void StreamSnapshot::Merge(const StreamSnapshot& other) {
  batches_scheduled += other.batches_scheduled;
  batches_applied += other.batches_applied;
  ops_applied += other.ops_applied;
  edges_added += other.edges_added;
  edges_deleted += other.edges_deleted;
  vertices_added += other.vertices_added;
  props_set += other.props_set;
  batch_retries += other.batch_retries;
  standing_queries += other.standing_queries;
  standing_runs += other.standing_runs;
  standing_conflated += other.standing_conflated;
  rows_emitted += other.rows_emitted;
  rows_retracted += other.rows_retracted;
  last_commit_ts = std::max(last_commit_ts, other.last_commit_ts);
}

void TxnSnapshot::Merge(const TxnSnapshot& other) {
  begun += other.begun;
  committed += other.committed;
  aborted += other.aborted;
  retried += other.retried;
  conflicts_locked += other.conflicts_locked;
  locks_claimed += other.locks_claimed;
  validation_failed += other.validation_failed;
  prepares_sent += other.prepares_sent;
  votes_yes += other.votes_yes;
  votes_no += other.votes_no;
  applies_sent += other.applies_sent;
  applies_acked += other.applies_acked;
  apply_retries += other.apply_retries;
  crashes_injected += other.crashes_injected;
  crash_wipes += other.crash_wipes;
  last_commit_ts = std::max(last_commit_ts, other.last_commit_ts);
}

const LogHistogram* MetricsSnapshot::Latency(const std::string& name) const {
  auto it = latency.find(name);
  return it == latency.end() ? nullptr : &it->second;
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  net.Merge(other.net);
  fault.Merge(other.fault);
  for (uint32_t k = 0; k < kNumStepKinds; ++k) steps_in[k] += other.steps_in[k];
  tasks_executed += other.tasks_executed;
  memo_hits += other.memo_hits;
  memo_misses += other.memo_misses;
  memo_created += other.memo_created;
  memo_cleared += other.memo_cleared;
  weight_finishes += other.weight_finishes;
  weight_reports += other.weight_reports;
  bulk_merges += other.bulk_merges;
  traversers_bulked += other.traversers_bulked;
  queries_submitted += other.queries_submitted;
  queries_completed += other.queries_completed;
  queries_failed += other.queries_failed;
  queries_timed_out += other.queries_timed_out;
  checker_attached = checker_attached || other.checker_attached;
  qos_enabled = qos_enabled || other.qos_enabled;
  spill_enabled = spill_enabled || other.spill_enabled;
  stream_enabled = stream_enabled || other.stream_enabled;
  txn_enabled = txn_enabled || other.txn_enabled;
  qos.Merge(other.qos);
  stream.Merge(other.stream);
  txn.Merge(other.txn);
  checker_trips += other.checker_trips;
  for (const auto& [name, n] : other.checker_trips_by) {
    checker_trips_by[name] += n;
  }
  if (links.empty()) {
    num_nodes = other.num_nodes;
    links = other.links;
  } else if (other.num_nodes == num_nodes) {
    for (size_t i = 0; i < links.size(); ++i) {
      links[i].frames += other.links[i].frames;
      links[i].bytes += other.links[i].bytes;
    }
  }
  if (pair_messages.empty()) {
    num_workers = other.num_workers;
    pair_messages = other.pair_messages;
  } else if (other.num_workers == num_workers) {
    for (size_t i = 0; i < pair_messages.size(); ++i) {
      pair_messages[i] += other.pair_messages[i];
    }
  }
  for (const auto& [name, hist] : other.latency) latency[name].Merge(hist);
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  out += "== metrics ==\n";
  out += "queries: submitted=" + U64(queries_submitted) +
         " completed=" + U64(queries_completed) +
         " failed=" + U64(queries_failed) +
         " timed_out=" + U64(queries_timed_out) + "\n";
  out += "tasks_executed=" + U64(tasks_executed) + "\n";
  out += "net: local=" + U64(net.local_messages) +
         " remote=" + U64(net.remote_messages) + " frames=" + U64(net.frames) +
         " bytes=" + U64(net.bytes) +
         " progress=" + U64(net.progress_messages()) +
         " other=" + U64(net.other_messages()) + "\n";
  out += "messages_by_kind:";
  for (int k = 0; k < static_cast<int>(MessageKind::kNumKinds); ++k) {
    out += std::string(" ") + MessageKindName(static_cast<MessageKind>(k)) +
           "=" + U64(net.messages_by_kind[k]);
  }
  out += "\n";
  out += "weights: finishes=" + U64(weight_finishes) +
         " reports=" + U64(weight_reports) + "\n";
  out += "bulking: merges=" + U64(bulk_merges) +
         " traversers_bulked=" + U64(traversers_bulked) + "\n";
  out += "memo: hits=" + U64(memo_hits) + " misses=" + U64(memo_misses) +
         " created=" + U64(memo_created) + " cleared=" + U64(memo_cleared) +
         "\n";
  out += "steps:";
  for (uint32_t k = 0; k < kNumStepKinds; ++k) {
    if (steps_in[k] == 0) continue;
    out += std::string(" ") + StepKindName(static_cast<StepKind>(k)) + "=" +
           U64(steps_in[k]);
  }
  out += "\n";
  out += "fault: drops=" + U64(fault.drops) + " dups=" + U64(fault.duplicates) +
         " delays=" + U64(fault.delays) + " crashes=" + U64(fault.crashes) +
         " restarts=" + U64(fault.restarts) +
         " fenced=" + U64(fault.fenced_messages) +
         " dup_suppressed=" + U64(fault.duplicates_suppressed) +
         " lost_in_crash=" + U64(fault.lost_in_crash) +
         " retries=" + U64(fault.retries) +
         " recovered=" + U64(fault.recovered_queries) +
         " failed=" + U64(fault.failed_queries) + "\n";
  for (uint32_t s = 0; s < num_nodes; ++s) {
    for (uint32_t d = 0; d < num_nodes; ++d) {
      const LinkStats& l = Link(s, d);
      if (l.frames == 0) continue;
      out += "link " + U64(s) + "->" + U64(d) + ": frames=" + U64(l.frames) +
             " bytes=" + U64(l.bytes) + "\n";
    }
  }
  for (const auto& [name, hist] : latency) {
    out += "latency[" + name + "]: " + hist.ToString() + "\n";
  }
  if (checker_attached) {
    // Gated on attachment so unchecked snapshots stay byte-identical to
    // pre-checker builds (the obs determinism tests depend on it).
    out += "checker: trips=" + U64(checker_trips);
    for (const auto& [name, n] : checker_trips_by) {
      out += " " + name + "=" + U64(n);
    }
    out += "\n";
  }
  if (qos_enabled) {
    // Gated like the checker block: governance-off snapshots stay
    // byte-identical to pre-QoS builds.
    out += "qos: submitted=" + U64(qos.submitted) +
           " admitted=" + U64(qos.admitted) + " shed=" + U64(qos.shed) +
           " cancelled=" + U64(qos.cancelled) +
           " peak_queued=" + U64(qos.peak_queued) + "\n";
    out += "qos_flow: flushes_held=" + U64(qos.flushes_held) +
           " ingest_deferrals=" + U64(qos.ingest_deferrals) +
           " credits_consumed=" + U64(qos.credit_bytes_consumed) +
           " credits_returned=" + U64(qos.credit_bytes_returned) + "\n";
    out += "qos_budget: peak_task_bytes=" + U64(qos.peak_task_bytes) +
           " peak_memo_bytes=" + U64(qos.peak_memo_bytes) +
           " memo_aborts=" + U64(qos.memo_aborts) + "\n";
  }
  if (spill_enabled) {
    // Gated separately from qos_enabled: a qos-on / spill-off run must stay
    // byte-identical to snapshots taken before the spill manager existed.
    out += "spill_memo: written=" + U64(qos.spill_memo_bytes_written) +
           " read=" + U64(qos.spill_memo_bytes_read) +
           " dropped=" + U64(qos.spill_memo_bytes_dropped) +
           " records=" + U64(qos.spill_memo_records) +
           " faults=" + U64(qos.spill_memo_faults) + "\n";
    out += "spill_tasks: written=" + U64(qos.spill_task_bytes_written) +
           " read=" + U64(qos.spill_task_bytes_read) +
           " dropped=" + U64(qos.spill_task_bytes_dropped) + "\n";
    out += "spill_pressure: peak_bytes=" + U64(qos.spill_peak_bytes) +
           " spilling=" + U64(qos.spill_pressure_transitions) +
           " last_resort=" + U64(qos.spill_last_resort) + "\n";
  }
  if (stream_enabled) {
    // Gated like the sections above: runs without a stream attached stay
    // byte-identical to pre-streaming builds.
    out += "stream: batches=" + U64(stream.batches_applied) + "/" +
           U64(stream.batches_scheduled) + " ops=" + U64(stream.ops_applied) +
           " edges_added=" + U64(stream.edges_added) +
           " edges_deleted=" + U64(stream.edges_deleted) +
           " vertices_added=" + U64(stream.vertices_added) +
           " props_set=" + U64(stream.props_set) +
           " retries=" + U64(stream.batch_retries) +
           " lct=" + U64(stream.last_commit_ts) + "\n";
    out += "stream_standing: queries=" + U64(stream.standing_queries) +
           " runs=" + U64(stream.standing_runs) +
           " conflated=" + U64(stream.standing_conflated) +
           " emitted=" + U64(stream.rows_emitted) +
           " retracted=" + U64(stream.rows_retracted) + "\n";
  }
  if (txn_enabled) {
    // Gated like the sections above: runs without a transaction manager
    // attached stay byte-identical to pre-transaction builds.
    out += "txn: begun=" + U64(txn.begun) + " committed=" + U64(txn.committed) +
           " aborted=" + U64(txn.aborted) + " retried=" + U64(txn.retried) +
           " locked=" + U64(txn.conflicts_locked) +
           " claimed=" + U64(txn.locks_claimed) +
           " vfail=" + U64(txn.validation_failed) +
           " lct=" + U64(txn.last_commit_ts) + "\n";
    out += "txn_protocol: prepares=" + U64(txn.prepares_sent) +
           " yes=" + U64(txn.votes_yes) + " no=" + U64(txn.votes_no) +
           " applies=" + U64(txn.applies_sent) + "/" +
           U64(txn.applies_acked) +
           " apply_retries=" + U64(txn.apply_retries) +
           " crashes=" + U64(txn.crashes_injected) +
           " crash_wipes=" + U64(txn.crash_wipes) + "\n";
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot s;
  s.net = net_;
  s.num_nodes = num_nodes_;
  s.num_workers = num_workers_;
  s.links = links_;
  s.pair_messages = pair_messages_;
  s.latency = latency_;
  s.queries_submitted = queries_submitted_;
  s.queries_completed = queries_completed_;
  s.queries_failed = queries_failed_;
  s.queries_timed_out = queries_timed_out_;
  for (const WorkerMetrics& w : workers_) {
    for (uint32_t k = 0; k < kNumStepKinds; ++k) s.steps_in[k] += w.steps_in[k];
    s.weight_finishes += w.weight_finishes;
    s.weight_reports += w.weight_reports;
    s.bulk_merges += w.bulk_merges;
    s.traversers_bulked += w.traversers_bulked;
  }
  return s;
}

}  // namespace obs
}  // namespace graphdance
