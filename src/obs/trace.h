#ifndef GRAPHDANCE_OBS_TRACE_H_
#define GRAPHDANCE_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace graphdance {
namespace obs {

/// Records per-query spans (attempts, scope execution, termination, retries,
/// crashes) stamped with virtual time and worker id, exportable as Chrome
/// trace_event JSON for chrome://tracing / Perfetto.
///
/// Pure observation: recording never charges virtual time or schedules
/// events, so enabling tracing cannot perturb the deterministic schedule —
/// and because every timestamp is virtual, two same-seed runs produce
/// byte-identical JSON.
///
/// Mapping: trace "pid" = simulated node, "tid" = virtual worker. All
/// timestamps are VIRTUAL nanoseconds (rendered as microseconds with 3
/// decimals); they are unrelated to wall-clock time.
class Tracer {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  /// A completed interval [start_ns, end_ns] (trace_event ph="X").
  /// `extra_args` is a raw JSON fragment appended inside "args" (e.g.
  /// "\"status\":\"ok\",\"rows\":3"), empty for none.
  void Span(std::string name, const char* category, SimTime start_ns,
            SimTime end_ns, uint32_t node, uint32_t worker, uint64_t query,
            uint32_t attempt, std::string extra_args = "");

  /// A point event (trace_event ph="i", thread scope).
  void Instant(std::string name, const char* category, SimTime at_ns,
               uint32_t node, uint32_t worker, uint64_t query, uint32_t attempt,
               std::string extra_args = "");

  /// Metadata record (ph="M"): names a process ("process_name", pid) or
  /// thread ("thread_name", pid+tid) in the trace viewer.
  void Meta(const char* what, uint32_t node, uint32_t worker,
            std::string label);

  /// The full trace document: {"displayTimeUnit":...,"traceEvents":[...]}.
  /// Deterministic: fixed-point timestamp formatting, events in recording
  /// order.
  std::string ToJson() const;

  /// Writes ToJson() to `path`. Returns false on I/O error.
  bool WriteJson(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    const char* category;
    char phase;        // 'X' span, 'i' instant, 'M' metadata
    SimTime ts;        // virtual ns
    SimTime dur;       // virtual ns, spans only
    uint32_t node;     // -> pid
    uint32_t worker;   // -> tid
    uint64_t query;
    uint32_t attempt;
    std::string extra;
  };

  bool enabled_ = false;
  std::vector<Event> events_;
};

}  // namespace obs
}  // namespace graphdance

#endif  // GRAPHDANCE_OBS_TRACE_H_
