#ifndef GRAPHDANCE_COMMON_VALUE_H_
#define GRAPHDANCE_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace graphdance {

class ByteWriter;
class ByteReader;

/// A dynamically-typed property value stored on vertices/edges and carried in
/// traverser local variables. Supports null, bool, int64, double and string.
///
/// Ordering: values of different types compare by type rank (null < bool <
/// int < double < string), except that int64 and double compare numerically.
class Value {
 public:
  enum class Type : uint8_t { kNull = 0, kBool, kInt, kDouble, kString };

  Value() : data_(std::monostate{}) {}
  explicit Value(bool b) : data_(b) {}
  explicit Value(int64_t i) : data_(i) {}
  explicit Value(int i) : data_(static_cast<int64_t>(i)) {}
  explicit Value(uint64_t i) : data_(static_cast<int64_t>(i)) {}
  explicit Value(double d) : data_(d) {}
  explicit Value(std::string s) : data_(std::move(s)) {}
  explicit Value(const char* s) : data_(std::string(s)) {}
  explicit Value(std::string_view s) : data_(std::string(s)) {}

  Type type() const { return static_cast<Type>(data_.index()); }
  bool is_null() const { return type() == Type::kNull; }

  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view: ints widen to double; other types return 0.
  double ToDouble() const;
  /// Integer view: doubles truncate; other types return 0.
  int64_t ToInt() const;
  /// Human-readable rendering (for results and debugging).
  std::string ToString() const;

  /// Total order across all values (see class comment). Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// 64-bit hash, consistent with operator== for same-type values.
  uint64_t Hash() const;

  void Serialize(ByteWriter* out) const;
  static Value Deserialize(ByteReader* in);

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// std::hash adapter so Value can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return static_cast<size_t>(v.Hash()); }
};

}  // namespace graphdance

#endif  // GRAPHDANCE_COMMON_VALUE_H_
