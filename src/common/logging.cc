#include "common/logging.h"

#include <cstring>
#include <mutex>

namespace graphdance {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace

std::atomic<int>& LogThreshold() {
  static std::atomic<int> threshold{static_cast<int>(LogLevel::kInfo)};
  return threshold;
}

void SetLogLevel(LogLevel level) {
  LogThreshold().store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  if (static_cast<int>(level) < LogThreshold().load(std::memory_order_relaxed)) {
    return;
  }
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
}

}  // namespace graphdance
