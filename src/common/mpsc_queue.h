#ifndef GRAPHDANCE_COMMON_MPSC_QUEUE_H_
#define GRAPHDANCE_COMMON_MPSC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace graphdance {

/// Multi-producer single-consumer inbox used for worker and network-thread
/// mailboxes. Producers push under a mutex; the consumer drains the whole
/// queue in one lock acquisition (batched drain keeps lock traffic low).
template <typename T>
class MpscQueue {
 public:
  MpscQueue() = default;
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  void Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  template <typename It>
  void PushBatch(It first, It last) {
    if (first == last) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (It it = first; it != last; ++it) items_.push_back(std::move(*it));
    }
    cv_.notify_one();
  }

  /// Moves all pending items into `out` (appended). Returns number drained.
  size_t DrainInto(std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = items_.size();
    for (auto& item : items_) out->push_back(std::move(item));
    items_.clear();
    return n;
  }

  /// Blocks until an item arrives or `timeout` elapses, then drains into
  /// `out`. Returns number drained (0 on timeout).
  size_t WaitDrainInto(std::vector<T>* out, std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
    size_t n = items_.size();
    for (auto& item : items_) out->push_back(std::move(item));
    items_.clear();
    return n;
  }

  /// Wakes all blocked consumers; subsequent waits return immediately.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  bool Empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_COMMON_MPSC_QUEUE_H_
