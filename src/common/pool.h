#ifndef GRAPHDANCE_COMMON_POOL_H_
#define GRAPHDANCE_COMMON_POOL_H_

// Free-list object recycling for the execute/serde hot path. A remote
// traverser hop churns several heap blocks (serialization buffer, message
// payload, frame vector, the traverser's own path/vars storage); each dies
// microseconds after it is born. These pools keep the dead bodies and hand
// them back with their capacity intact, so steady-state execution allocates
// nothing.
//
// Ownership protocol: Acquire() MOVES an object out of the pool — the pool
// never retains a reference to a live object, so a recycled object can never
// alias one still in use (the property test in container_test.cc checks
// this under ASan). Release() moves the object back; the caller must treat
// it as gone. Contents are not cleared on Release — Acquire() clears
// vectors before handing them out, and opaque objects (ObjectPool) are the
// caller's job to re-initialize.
//
// All pools are single-threaded (the DES cluster is single-threaded by
// design) and bounded: releases beyond `max_pooled` — or of buffers that
// grew past `max_retained` elements — simply free, so one pathological
// query cannot pin memory for the rest of the run.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace graphdance {

/// Recycles std::vector<T> instances, preserving their capacity.
template <typename T>
class VectorPool {
 public:
  explicit VectorPool(size_t max_pooled = 256, size_t max_retained = 1 << 16)
      : max_pooled_(max_pooled), max_retained_(max_retained) {}

  /// Returns an empty vector, reusing pooled capacity when available.
  std::vector<T> Acquire() {
    if (free_.empty()) return {};
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  /// Takes ownership of a dead vector. Oversized or surplus vectors free.
  void Release(std::vector<T>&& v) {
    if (v.capacity() == 0 || v.capacity() > max_retained_ ||
        free_.size() >= max_pooled_) {
      return;  // v's destructor frees it
    }
    free_.push_back(std::move(v));
  }

  size_t pooled() const { return free_.size(); }

 private:
  std::vector<std::vector<T>> free_;
  size_t max_pooled_;
  size_t max_retained_;
};

/// Payload/serialization buffers.
using BufferPool = VectorPool<uint8_t>;

/// Recycles whole objects (e.g. Traverser: its path vector and spilled vars
/// keep their heap capacity across reuse). The caller re-initializes every
/// field after Acquire(); the pool only preserves storage.
template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(size_t max_pooled = 256) : max_pooled_(max_pooled) {}

  T Acquire() {
    if (free_.empty()) return T{};
    T obj = std::move(free_.back());
    free_.pop_back();
    return obj;
  }

  void Release(T&& obj) {
    if (free_.size() >= max_pooled_) return;
    free_.push_back(std::move(obj));
  }

  size_t pooled() const { return free_.size(); }

 private:
  std::vector<T> free_;
  size_t max_pooled_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_COMMON_POOL_H_
