#ifndef GRAPHDANCE_COMMON_HASH_H_
#define GRAPHDANCE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace graphdance {

/// SplitMix64 finalizer: a fast, high-quality 64-bit bit mixer. Used both as
/// the graph partitioning hash H(v) and as a building block for value hashes.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a style byte hash with a 64-bit mix finisher.
inline uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

/// Combines two hashes (boost-style with 64-bit constant).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

}  // namespace graphdance

#endif  // GRAPHDANCE_COMMON_HASH_H_
