#ifndef GRAPHDANCE_COMMON_HISTOGRAM_H_
#define GRAPHDANCE_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace graphdance {

/// Records latency samples (microseconds) and reports average and
/// percentiles. Used by the LDBC driver and benchmark harnesses.
class LatencyRecorder {
 public:
  void Record(double micros) { samples_.push_back(micros); }

  size_t count() const { return samples_.size(); }

  double Avg() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  double Min() const {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  /// q in [0, 1], e.g. 0.99 for P99. Nearest-rank on a sorted copy.
  double Percentile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    return sorted[idx];
  }

  double P50() const { return Percentile(0.50); }
  double P99() const { return Percentile(0.99); }

  void Clear() { samples_.clear(); }

  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  }

 private:
  std::vector<double> samples_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_COMMON_HISTOGRAM_H_
