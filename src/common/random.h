#ifndef GRAPHDANCE_COMMON_RANDOM_H_
#define GRAPHDANCE_COMMON_RANDOM_H_

#include <cstdint>

#include "common/hash.h"

namespace graphdance {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via SplitMix64. Every
/// stochastic component in the library (graph generators, weight splitting,
/// workload drivers) draws from an explicitly seeded instance so runs are
/// reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      si = Mix64(x);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace graphdance

#endif  // GRAPHDANCE_COMMON_RANDOM_H_
