#ifndef GRAPHDANCE_COMMON_STATUS_H_
#define GRAPHDANCE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace graphdance {

/// Error codes used across the library. The public API reports failures via
/// `Status` / `Result<T>` instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kAborted,         // transaction aborts (lock conflicts)
  kResourceExhausted,
  kTimeout,
  kDeadlineExceeded,  // a budget (e.g. the DES event budget) ran out mid-run
};

/// Returns a short human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. OK statuses carry no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. Access `value()` only when `ok()`.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional for ergonomics.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_COMMON_STATUS_H_
