#ifndef GRAPHDANCE_COMMON_FLAT_MAP_H_
#define GRAPHDANCE_COMMON_FLAT_MAP_H_

// Open-addressing hash containers for the execute hot path. The per-worker
// lookup structures (memo tables, bulking merge indices, receive-queue
// indices, distance/dedup memos) are hit once or more per traverser;
// std::unordered_map costs a heap-allocated node per entry and a pointer
// chase per probe. FlatMap keeps entries in one contiguous slot array with
// linear probing, so the common hit is a single cache line.
//
// Determinism note (DESIGN.md §13): iteration order of ForEach/EraseIf is
// the slot order, which depends on insertion history — exactly as
// unordered_map's order was unspecified. Callers on the result/schedule
// path must therefore sort before iterating (the pre-existing rule; the
// checker's determinism suite enforces it).
//
// Not provided on purpose: iterators (use ForEach), reference stability
// across mutation (entries move on rehash and erase — take copies, not
// pointers, across mutating calls), and node handles.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace graphdance {

/// Default hasher. Integral keys are finalized through Mix64: the hot keys
/// are structured packs like (query_id << 32) | step_id, and linear probing
/// degenerates into long runs without full avalanche. Other key types must
/// supply their own hasher (e.g. ValueHash).
template <typename K, typename Enable = void>
struct FlatHash;

template <typename K>
struct FlatHash<K, std::enable_if_t<std::is_integral_v<K>>> {
  uint64_t operator()(K k) const { return Mix64(static_cast<uint64_t>(k)); }
};

/// Open-addressing hash map: linear probing, power-of-two capacity, max load
/// factor 3/4, backward-shift deletion (no tombstones). Requirements:
/// K and V default-constructible and move-assignable.
template <typename K, typename V, typename Hash = FlatHash<K>,
          typename Eq = std::equal_to<K>>
class FlatMap {
 public:
  using Entry = std::pair<K, V>;

  FlatMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Drops all entries but keeps the slot array (the per-flush merge-index
  /// reset must not re-grow from scratch every batch).
  void Clear() {
    if (size_ == 0) return;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i]) {
        slots_[i] = Entry{};
        ctrl_[i] = 0;
      }
    }
    size_ = 0;
  }

  void Reserve(size_t n) {
    size_t want = kMinCapacity;
    while (want * 3 < n * 4) want <<= 1;
    if (want > slots_.size()) Rehash(want);
  }

  V* Find(const K& k) {
    if (size_ == 0) return nullptr;
    size_t i = ProbeStart(k);
    const size_t mask = slots_.size() - 1;
    while (ctrl_[i]) {
      if (eq_(slots_[i].first, k)) return &slots_[i].second;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  const V* Find(const K& k) const {
    return const_cast<FlatMap*>(this)->Find(k);
  }

  bool Contains(const K& k) const { return Find(k) != nullptr; }

  /// Inserts {k, V(args...)} if absent. Returns {slot, inserted}. The slot
  /// pointer is invalidated by any later mutation.
  template <typename... Args>
  std::pair<V*, bool> TryEmplace(const K& k, Args&&... args) {
    GrowIfNeeded();
    size_t i = ProbeStart(k);
    const size_t mask = slots_.size() - 1;
    while (ctrl_[i]) {
      if (eq_(slots_[i].first, k)) return {&slots_[i].second, false};
      i = (i + 1) & mask;
    }
    ctrl_[i] = 1;
    slots_[i].first = k;
    slots_[i].second = V(std::forward<Args>(args)...);
    ++size_;
    return {&slots_[i].second, true};
  }

  V& operator[](const K& k) { return *TryEmplace(k).first; }

  /// Backward-shift deletion: restores the linear-probing invariant without
  /// tombstones, so load factor (and probe length) never rots.
  bool Erase(const K& k) {
    if (size_ == 0) return false;
    const size_t mask = slots_.size() - 1;
    size_t i = ProbeStart(k);
    while (ctrl_[i]) {
      if (eq_(slots_[i].first, k)) {
        EraseSlot(i);
        return true;
      }
      i = (i + 1) & mask;
    }
    return false;
  }

  /// Erases every entry matching `pred(key, value)`; returns the count.
  /// Implemented as mark + in-place rehash (safe under arbitrary erase
  /// patterns, unlike shifting while iterating).
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i] &&
          pred(const_cast<const K&>(slots_[i].first), slots_[i].second)) {
        slots_[i] = Entry{};
        ctrl_[i] = 0;
        ++erased;
      }
    }
    if (erased > 0) {
      size_ -= erased;
      RehashInPlace();
    }
    return erased;
  }

  /// Visits every entry in slot order (unspecified order — sort first if the
  /// result feeds the schedule or rows). Must not mutate the map.
  template <typename Fn>
  void ForEach(Fn fn) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i]) fn(const_cast<const K&>(slots_[i].first), slots_[i].second);
    }
  }
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i]) fn(slots_[i].first, slots_[i].second);
    }
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  size_t ProbeStart(const K& k) const {
    return hash_(k) & (slots_.size() - 1);
  }

  void GrowIfNeeded() {
    if (slots_.empty()) {
      Rehash(kMinCapacity);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    }
  }

  void Rehash(size_t new_cap) {
    std::vector<Entry> old_slots;
    std::vector<uint8_t> old_ctrl;
    old_slots.swap(slots_);
    old_ctrl.swap(ctrl_);
    slots_.resize(new_cap);
    ctrl_.assign(new_cap, 0);
    const size_t mask = new_cap - 1;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_ctrl[i]) continue;
      size_t j = hash_(old_slots[i].first) & mask;
      while (ctrl_[j]) j = (j + 1) & mask;
      ctrl_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  /// Re-seats every surviving entry after a bulk erase. Marks entries
  /// "pending" (ctrl 2) and re-probes each; displaced pending entries are
  /// swapped into the cursor and re-probed in turn.
  void RehashInPlace() {
    const size_t mask = slots_.size() - 1;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (ctrl_[i]) ctrl_[i] = 2;
    }
    for (size_t i = 0; i < slots_.size(); ++i) {
      while (ctrl_[i] == 2) {
        Entry e = std::move(slots_[i]);
        slots_[i] = Entry{};
        ctrl_[i] = 0;
        for (;;) {
          size_t j = hash_(e.first) & mask;
          while (ctrl_[j] == 1) j = (j + 1) & mask;
          if (ctrl_[j] == 2) {
            std::swap(e, slots_[j]);
            ctrl_[j] = 1;
            continue;  // re-probe the displaced pending entry
          }
          ctrl_[j] = 1;
          slots_[j] = std::move(e);
          break;
        }
      }
    }
  }

  void EraseSlot(size_t i) {
    const size_t mask = slots_.size() - 1;
    size_t hole = i;
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (!ctrl_[j]) break;
      size_t ideal = hash_(slots_[j].first) & mask;
      // Entry at j may fill the hole iff the hole lies within j's probe
      // window [ideal, j] (cyclically) — Knuth's linear-probing deletion.
      if (((j - ideal) & mask) >= ((j - hole) & mask)) {
        slots_[hole] = std::move(slots_[j]);
        hole = j;
      }
    }
    slots_[hole] = Entry{};
    ctrl_[hole] = 0;
    --size_;
  }

  std::vector<Entry> slots_;
  std::vector<uint8_t> ctrl_;  // 0 empty, 1 full, 2 rehash-pending
  size_t size_ = 0;
  Hash hash_;
  Eq eq_;
};

/// Open-addressing hash set over FlatMap's probe machinery.
template <typename K, typename Hash = FlatHash<K>, typename Eq = std::equal_to<K>>
class FlatSet {
 public:
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void Clear() { map_.Clear(); }
  void Reserve(size_t n) { map_.Reserve(n); }

  /// Returns true when `k` was newly inserted.
  bool Insert(const K& k) { return map_.TryEmplace(k).second; }
  bool Contains(const K& k) const { return map_.Contains(k); }
  bool Erase(const K& k) { return map_.Erase(k); }

  template <typename Fn>
  void ForEach(Fn fn) const {
    map_.ForEach([&fn](const K& k, const Empty&) { fn(k); });
  }

 private:
  struct Empty {};
  FlatMap<K, Empty, Hash, Eq> map_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_COMMON_FLAT_MAP_H_
