#ifndef GRAPHDANCE_COMMON_SERDE_H_
#define GRAPHDANCE_COMMON_SERDE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace graphdance {

/// Appends little-endian fixed-width primitives and length-prefixed strings
/// to a growable byte buffer. Used for message and traverser encoding.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(size_t reserve) { buf_.reserve(reserve); }
  /// Adopts a recycled buffer (e.g. from a BufferPool), reusing its
  /// capacity; grows to at least `reserve` bytes.
  ByteWriter(std::vector<uint8_t> recycled, size_t reserve)
      : buf_(std::move(recycled)) {
    buf_.clear();
    buf_.reserve(reserve);
  }

  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU16(uint16_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteRaw(s.data(), s.size());
  }
  void WriteRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  size_t size() const { return buf_.size(); }
  const uint8_t* data() const { return buf_.data(); }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  void Clear() { buf_.clear(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Reads values written by ByteWriter, in the same order. A read past the
/// end of the buffer trips an assert in debug builds; release builds
/// fail-safe instead of reading out of bounds: the reader latches
/// `truncated()`, the offending read (and every read after it) returns a
/// zero value / empty string, and the cursor pins to the end. Decoders stay
/// total functions over arbitrary byte strings — a truncated or corrupted
/// frame can produce garbage values but never undefined behaviour.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), size_(buf.size()) {}

  uint8_t ReadU8() { return ReadFixed<uint8_t>(); }
  uint16_t ReadU16() { return ReadFixed<uint16_t>(); }
  uint32_t ReadU32() { return ReadFixed<uint32_t>(); }
  uint64_t ReadU64() { return ReadFixed<uint64_t>(); }
  int64_t ReadI64() { return ReadFixed<int64_t>(); }
  double ReadDouble() { return ReadFixed<double>(); }
  std::string ReadString() {
    uint32_t n = ReadU32();
    if (!Bounded(n)) return std::string();
    size_t off = pos_;
    pos_ += n;
    return std::string(reinterpret_cast<const char*>(data_ + off), n);
  }
  /// Copies `n` bytes into `out`, zero-filling whatever the buffer cannot
  /// cover (the guard path zero-fills all of it).
  void ReadRaw(void* out, size_t n) {
    if (!Bounded(n)) {
      std::memset(out, 0, n);
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }
  /// True once any read ran past the end of the buffer.
  bool truncated() const { return truncated_; }

 private:
  template <typename T>
  T ReadFixed() {
    if (!Bounded(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  /// Overflow-safe bounds check (pos_ + n could wrap for hostile n).
  bool Bounded(size_t n) {
    if (n <= size_ - pos_) return true;  // pos_ <= size_ always holds
    assert(false && "ByteReader overflow");
    truncated_ = true;
    pos_ = size_;
    return false;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool truncated_ = false;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_COMMON_SERDE_H_
