#ifndef GRAPHDANCE_COMMON_SMALL_VECTOR_H_
#define GRAPHDANCE_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace graphdance {

/// A vector with inline storage for the first N elements; spills to the heap
/// beyond that. Traverser local-variable lists are almost always tiny, so
/// this avoids a heap allocation per traverser on the hot path.
///
/// Iterator-invalidation contract (begin()/end()/data() are raw pointers):
///  - push_back/emplace_back/resize/reserve invalidate ALL iterators when
///    they grow past capacity(); while capacity suffices, only end() moves.
///  - pop_back/clear keep storage, so data() stays valid but iterators at or
///    past the new end() dangle.
///  - Moving FROM a spilled (heap-backed) vector transfers the heap block:
///    iterators into it stay valid but now belong to the destination. Moving
///    from an inline vector moves element-by-element and leaves the source
///    empty; its iterators are invalidated.
///  - Self-move-assignment is a no-op; copy/move-assignment invalidate all
///    destination iterators.
template <typename T, size_t N>
class SmallVector {
 public:
  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) { CopyFrom(other); }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      CopyFrom(other);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear();
      ReleaseHeap();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() {
    clear();
    ReleaseHeap();
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow();
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    assert(size_ > 0);
    --size_;
    data()[size_].~T();
  }

  void resize(size_t n) {
    while (size_ > n) pop_back();
    while (size_ < n) emplace_back();
  }

  void clear() {
    for (size_t i = 0; i < size_; ++i) data()[i].~T();
    size_ = 0;
  }

  T& operator[](size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return data()[i];
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  T* data() { return heap_ ? heap_ : reinterpret_cast<T*>(inline_); }
  const T* data() const {
    return heap_ ? heap_ : reinterpret_cast<const T*>(inline_);
  }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  /// Grows capacity to at least `n` in one reallocation (never shrinks).
  void reserve(size_t n) {
    if (n > capacity_) GrowTo(n);
  }

  bool operator==(const SmallVector& other) const {
    if (size_ != other.size_) return false;
    return std::equal(begin(), end(), other.begin());
  }

 private:
  void Grow() { GrowTo(capacity_ * 2); }

  void GrowTo(size_t new_cap) {
    T* new_heap = static_cast<T*>(Allocate(new_cap));
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(new_heap + i)) T(std::move(data()[i]));
      data()[i].~T();
    }
    ReleaseHeap();
    heap_ = new_heap;
    capacity_ = new_cap;
  }

  static void* Allocate(size_t cap) {
    if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
      return ::operator new(cap * sizeof(T), std::align_val_t(alignof(T)));
    } else {
      return ::operator new(cap * sizeof(T));
    }
  }

  void ReleaseHeap() {
    if (heap_) {
      if constexpr (alignof(T) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
        ::operator delete(heap_, std::align_val_t(alignof(T)));
      } else {
        ::operator delete(heap_);
      }
      heap_ = nullptr;
      capacity_ = N;
    }
  }

  void CopyFrom(const SmallVector& other) {
    reserve(other.size_);
    for (const T& v : other) push_back(v);
  }

  void MoveFrom(SmallVector&& other) {
    if (other.heap_) {
      heap_ = other.heap_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      for (size_t i = 0; i < other.size_; ++i) {
        push_back(std::move(other.data()[i]));
      }
      other.clear();
    }
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_COMMON_SMALL_VECTOR_H_
