#ifndef GRAPHDANCE_COMMON_LOGGING_H_
#define GRAPHDANCE_COMMON_LOGGING_H_

#include <atomic>
#include <cstdio>
#include <string>

namespace graphdance {

/// Log severities in increasing order of importance.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Benchmarks
/// raise this to kWarn to keep output clean.
std::atomic<int>& LogThreshold();

void SetLogLevel(LogLevel level);

/// Emits one formatted line to stderr if `level` passes the threshold.
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

}  // namespace graphdance

#define GD_LOG(level, msg) \
  ::graphdance::LogMessage(level, __FILE__, __LINE__, (msg))
#define GD_DEBUG(msg) GD_LOG(::graphdance::LogLevel::kDebug, msg)
#define GD_INFO(msg) GD_LOG(::graphdance::LogLevel::kInfo, msg)
#define GD_WARN(msg) GD_LOG(::graphdance::LogLevel::kWarn, msg)
#define GD_ERROR(msg) GD_LOG(::graphdance::LogLevel::kError, msg)

#endif  // GRAPHDANCE_COMMON_LOGGING_H_
