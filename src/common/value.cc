#include "common/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash.h"
#include "common/serde.h"

namespace graphdance {

namespace {

// Type rank used for cross-type ordering; int and double share a rank so
// they compare numerically.
int TypeRank(Value::Type t) {
  switch (t) {
    case Value::Type::kNull:
      return 0;
    case Value::Type::kBool:
      return 1;
    case Value::Type::kInt:
    case Value::Type::kDouble:
      return 2;
    case Value::Type::kString:
      return 3;
  }
  return 4;
}

template <typename T>
int Cmp(T a, T b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

double Value::ToDouble() const {
  switch (type()) {
    case Type::kInt:
      return static_cast<double>(as_int());
    case Type::kDouble:
      return as_double();
    case Type::kBool:
      return as_bool() ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

int64_t Value::ToInt() const {
  switch (type()) {
    case Type::kInt:
      return as_int();
    case Type::kDouble:
      return static_cast<int64_t>(as_double());
    case Type::kBool:
      return as_bool() ? 1 : 0;
    default:
      return 0;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return as_bool() ? "true" : "false";
    case Type::kInt:
      return std::to_string(as_int());
    case Type::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    case Type::kString:
      return as_string();
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type()), rb = TypeRank(other.type());
  if (ra != rb) return Cmp(ra, rb);
  switch (type()) {
    case Type::kNull:
      return 0;
    case Type::kBool:
      return Cmp<int>(as_bool(), other.as_bool());
    case Type::kInt:
      if (other.type() == Type::kInt) return Cmp(as_int(), other.as_int());
      return Cmp(ToDouble(), other.ToDouble());
    case Type::kDouble:
      return Cmp(ToDouble(), other.ToDouble());
    case Type::kString:
      return as_string().compare(other.as_string()) < 0
                 ? -1
                 : (as_string() == other.as_string() ? 0 : 1);
  }
  return 0;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case Type::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case Type::kBool:
      return Mix64(as_bool() ? 2 : 1);
    case Type::kInt:
      return Mix64(static_cast<uint64_t>(as_int()) ^ 0x2545F4914F6CDD1DULL);
    case Type::kDouble: {
      // Normalize -0.0 so that equal doubles hash equally.
      double d = as_double() == 0.0 ? 0.0 : as_double();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits ^ 0x9E3779B185EBCA87ULL);
    }
    case Type::kString:
      return HashBytes(as_string().data(), as_string().size());
  }
  return 0;
}

void Value::Serialize(ByteWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      out->WriteU8(as_bool() ? 1 : 0);
      break;
    case Type::kInt:
      out->WriteI64(as_int());
      break;
    case Type::kDouble:
      out->WriteDouble(as_double());
      break;
    case Type::kString:
      out->WriteString(as_string());
      break;
  }
}

Value Value::Deserialize(ByteReader* in) {
  auto t = static_cast<Type>(in->ReadU8());
  switch (t) {
    case Type::kNull:
      return Value();
    case Type::kBool:
      return Value(in->ReadU8() != 0);
    case Type::kInt:
      return Value(in->ReadI64());
    case Type::kDouble:
      return Value(in->ReadDouble());
    case Type::kString:
      return Value(in->ReadString());
  }
  return Value();
}

}  // namespace graphdance
