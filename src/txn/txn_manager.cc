#include "txn/txn_manager.h"

namespace graphdance {

namespace {
// Virtual-time charges for transactional operations (lock table probe and
// per-write TEL append at the owning partition).
constexpr uint64_t kLockNs = 150;
constexpr uint64_t kApplyNs = 400;
}  // namespace

TransactionManager::TxnId TransactionManager::Begin() {
  TxnId id = next_txn_++;
  txns_.emplace(id, TxnState{});
  return id;
}

Status TransactionManager::Lock(TxnState& txn, TxnId id, VertexId v) {
  if (txn.locks.count(v) > 0) return Status::OK();
  auto [it, inserted] = lock_table_.try_emplace(v, id);
  if (!inserted && it->second != id) {
    return Status::Aborted("write-write conflict on vertex " + std::to_string(v));
  }
  it->second = id;
  txn.locks.insert(v);
  return Status::OK();
}

void TransactionManager::ReleaseLocks(TxnState& txn) {
  for (VertexId v : txn.locks) lock_table_.erase(v);
  txn.locks.clear();
}

Status TransactionManager::AddVertex(TxnId id, VertexId v, LabelId label) {
  auto it = txns_.find(id);
  if (it == txns_.end()) return Status::NotFound("unknown transaction");
  Status s = Lock(it->second, id, v);
  if (!s.ok()) {
    Abort(id);
    return s;
  }
  WriteOp op;
  op.kind = WriteOp::Kind::kAddVertex;
  op.v = v;
  op.label = label;
  it->second.writes.push_back(std::move(op));
  return Status::OK();
}

Status TransactionManager::AddEdge(TxnId id, VertexId src, LabelId elabel,
                                   VertexId dst, Value prop) {
  auto it = txns_.find(id);
  if (it == txns_.end()) return Status::NotFound("unknown transaction");
  // Both half-edges are written; lock both anchors for 2PL.
  Status s = Lock(it->second, id, src);
  if (s.ok()) s = Lock(it->second, id, dst);
  if (!s.ok()) {
    Abort(id);
    return s;
  }
  WriteOp op;
  op.kind = WriteOp::Kind::kAddEdge;
  op.v = src;
  op.other = dst;
  op.label = elabel;
  op.value = std::move(prop);
  it->second.writes.push_back(std::move(op));
  return Status::OK();
}

Status TransactionManager::DeleteEdge(TxnId id, VertexId src, LabelId elabel,
                                      VertexId dst) {
  auto it = txns_.find(id);
  if (it == txns_.end()) return Status::NotFound("unknown transaction");
  Status s = Lock(it->second, id, src);
  if (s.ok()) s = Lock(it->second, id, dst);
  if (!s.ok()) {
    Abort(id);
    return s;
  }
  WriteOp op;
  op.kind = WriteOp::Kind::kDeleteEdge;
  op.v = src;
  op.other = dst;
  op.label = elabel;
  it->second.writes.push_back(std::move(op));
  return Status::OK();
}

Status TransactionManager::SetProperty(TxnId id, VertexId v, PropKeyId key,
                                       Value value) {
  auto it = txns_.find(id);
  if (it == txns_.end()) return Status::NotFound("unknown transaction");
  Status s = Lock(it->second, id, v);
  if (!s.ok()) {
    Abort(id);
    return s;
  }
  WriteOp op;
  op.kind = WriteOp::Kind::kSetProp;
  op.v = v;
  op.prop_key = key;
  op.value = std::move(value);
  it->second.writes.push_back(std::move(op));
  return Status::OK();
}

Result<Timestamp> TransactionManager::Commit(TxnId id) {
  auto it = txns_.find(id);
  if (it == txns_.end()) return Status::NotFound("unknown transaction");
  TxnState& txn = it->second;
  Timestamp ts = next_ts_++;
  ApplyWrites(txn, ts);
  // Charge the lock-table interaction to the manager-resident worker 0.
  cluster_->ApplyAtPartition(0, kLockNs * (txn.locks.size() + 1),
                             [](PartitionStore&) {});
  ReleaseLocks(txn);
  txns_.erase(it);
  // Serial commit order in the DES: the LCT advances to this commit and is
  // (conceptually) broadcast so any node can serve read timestamps.
  lct_ = ts;
  ++committed_;
  return ts;
}

void TransactionManager::CrashDuringCommit(TxnId id) {
  auto it = txns_.find(id);
  if (it == txns_.end()) return;
  Timestamp ts = next_ts_++;
  ApplyWrites(it->second, ts);
  // Crash before the LCT advances: locks evaporate, the partial commit
  // stays in the TEL with ts > LCT until recovery truncates it.
  ReleaseLocks(it->second);
  txns_.erase(it);
}

void TransactionManager::ApplyWrites(const TxnState& txn, Timestamp ts) {
  const PartitionedGraph& g = cluster_->graph();
  for (const WriteOp& op : txn.writes) {
    PartitionId anchor = g.PartitionOf(op.v);
    switch (op.kind) {
      case WriteOp::Kind::kAddVertex:
        cluster_->ApplyAtPartition(anchor, kApplyNs, [&](PartitionStore& store) {
          store.tel().AddVertex(op.v, op.label, ts);
        });
        break;
      case WriteOp::Kind::kAddEdge: {
        cluster_->ApplyAtPartition(anchor, kApplyNs, [&](PartitionStore& store) {
          store.tel().AddEdge(op.v, op.label, Direction::kOut, op.other, ts, op.value);
        });
        cluster_->ApplyAtPartition(g.PartitionOf(op.other), kApplyNs,
                                   [&](PartitionStore& store) {
                                     store.tel().AddEdge(op.other, op.label,
                                                         Direction::kIn, op.v, ts,
                                                         op.value);
                                   });
        break;
      }
      case WriteOp::Kind::kDeleteEdge: {
        cluster_->ApplyAtPartition(anchor, kApplyNs, [&](PartitionStore& store) {
          store.tel().DeleteEdge(op.v, op.label, Direction::kOut, op.other, ts);
        });
        cluster_->ApplyAtPartition(g.PartitionOf(op.other), kApplyNs,
                                   [&](PartitionStore& store) {
                                     store.tel().DeleteEdge(op.other, op.label,
                                                            Direction::kIn, op.v, ts);
                                   });
        break;
      }
      case WriteOp::Kind::kSetProp:
        cluster_->ApplyAtPartition(anchor, kApplyNs, [&](PartitionStore& store) {
          store.tel().SetProperty(op.v, op.prop_key, op.value, ts);
        });
        break;
    }
  }
}

void TransactionManager::Abort(TxnId id) {
  auto it = txns_.find(id);
  if (it == txns_.end()) return;
  ReleaseLocks(it->second);
  txns_.erase(it);
  ++aborted_;
}

void TransactionManager::CompactAll(Timestamp watermark) {
  PartitionedGraph& g = cluster_->mutable_graph();
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    cluster_->ApplyAtPartition(p, /*cost_ns=*/20'000, [&](PartitionStore& store) {
      store.tel().Compact(watermark);
    });
  }
}

void TransactionManager::SimulateCrashAndRecover() {
  // In-flight transactions vanish with the crash; their timestamps may have
  // been consumed but nothing past the LCT survives recovery.
  std::vector<TxnId> inflight;
  inflight.reserve(txns_.size());
  for (auto& [id, txn] : txns_) {
    ReleaseLocks(txn);
    inflight.push_back(id);
  }
  for (TxnId id : inflight) txns_.erase(id);
  lock_table_.clear();

  PartitionedGraph& g = cluster_->mutable_graph();
  for (PartitionId p = 0; p < g.num_partitions(); ++p) {
    cluster_->ApplyAtPartition(p, /*cost_ns=*/50'000, [&](PartitionStore& store) {
      store.tel().TruncateAfter(lct_);
    });
  }
}

}  // namespace graphdance
