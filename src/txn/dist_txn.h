#ifndef GRAPHDANCE_TXN_DIST_TXN_H_
#define GRAPHDANCE_TXN_DIST_TXN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "runtime/sim_cluster.h"

namespace graphdance {

/// Distributed multi-partition write transactions (DESIGN.md §16).
///
/// Optimistic, conflict-detected commit over the existing message layer,
/// modeled on ClusterSTM's stm-distrib: a transaction buffers its writes
/// lock-free, then commits in two rounds.
///
///   Round 1 (prepare/validate): the coordinator splits the write set into
///   per-partition sub-ops and sends each owning worker a kPrepare carrying
///   the snapshot timestamp and its slice of the write set. The participant
///   validates every anchor vertex — the no-wait write lock must be free (or
///   already ours) and the anchor's last committed version must not exceed
///   the transaction's snapshot (first-committer-wins OCC) — then claims the
///   locks and votes.
///
///   Round 2 (commit-apply): on unanimous yes the coordinator assigns the
///   commit timestamp (next_ts_++), records the decision durably, and sends
///   self-contained kApply messages stamped with it. Participants write the
///   sub-ops into their TEL at that timestamp, advance the anchor version
///   table, record the transaction in a durable applied ledger (idempotence
///   under resends), release its locks and ack. Any vote of no releases the
///   claimed locks and retries the whole transaction with exponential
///   backoff under a fresh attempt number.
///
/// All-or-nothing under crashes: the LCT advances only through the
/// contiguous fully-applied prefix of decided commit timestamps, so a
/// partially applied transaction is invisible to every reader (its versions
/// carry ts > LCT) until an apply watchdog re-delivers the missing kApply
/// messages to the restarted worker and the acks complete the prefix. The
/// protocol reuses the fault subsystem's fencing wholesale: worker epochs
/// fence pre-crash protocol messages, per-pair seqs dedup duplicated ones,
/// and per-transaction attempt numbers fence votes from abandoned rounds.
/// A crash wipes a partition's volatile state (lock table, prepared set) via
/// the cluster's crash observer; its durable state (anchor version table,
/// applied ledger — the on-disk commit records) survives like the TEL does.
///
/// Two drive modes, mirroring the streaming ingestor:
///   - event-driven (CommitAsync) over an async-engine SimCluster, and
///   - phased (CommitDirect) for BSP and real-thread ThreadCluster runs,
///     which cannot interleave protocol events with query supersteps; the
///     same validation/locking/versioning runs synchronously, with the chaos
///     hooks emulating the crash points (a torn transaction stays invisible
///     until RecoverDirect() replays the missing partitions from the
///     decision record).
class DistTxnManager {
 public:
  using TxnId = uint64_t;

  /// Protocol phase targeted by the crash-chaos hook.
  enum class CrashPhase : uint8_t { kNone = 0, kPrepare, kCommit, kApply };

  struct Options {
    /// Attempts before a conflicting transaction aborts for good.
    uint32_t max_attempts = 6;
    /// Round-1 watchdog: a prepare round with missing votes after this long
    /// is abandoned and retried (covers crashed participants / lost votes).
    SimTime prepare_timeout_ns = 4'000'000;
    /// Round-2 watchdog: an unacked kApply is re-sent after this long
    /// (doubling per resend). Guarantees decided transactions finish.
    SimTime apply_retry_ns = 1'500'000;
    /// Base backoff before a conflict retry (doubles per attempt).
    SimTime retry_backoff_ns = 300'000;

    // --- chaos hooks (deterministic crash schedules for the oracle) ---
    /// Crash the relevant worker at the nth action of this phase:
    /// kPrepare — the destination of the nth kPrepare sent; kCommit — the
    /// first participant at the nth all-yes decision; kApply — the
    /// destination of the nth kApply sent.
    CrashPhase crash_phase = CrashPhase::kNone;
    uint64_t crash_nth = 1;  // 1-based
    SimTime crash_restart_ns = 600'000;

    /// Non-vacuity mutation: silently drop the last sub-op of the nth kApply
    /// payload (0 = off). A correct oracle must catch the torn write.
    uint64_t corrupt_nth_apply = 0;
  };

  /// Event-driven mode: the two-round protocol runs over `cluster`'s
  /// message layer (async engine only — BSP never drains scheduled events
  /// between supersteps). Attaches the txn message handler, crash observer
  /// and stats block; the destructor detaches them.
  DistTxnManager(SimCluster* cluster, Options opt);
  explicit DistTxnManager(SimCluster* cluster);

  /// Phased mode: validation/locking/versioning over a bare graph with no
  /// transport (ThreadCluster drives, serial reference executors).
  DistTxnManager(PartitionedGraph* graph, Options opt);
  explicit DistTxnManager(PartitionedGraph* graph);

  ~DistTxnManager();
  DistTxnManager(const DistTxnManager&) = delete;
  DistTxnManager& operator=(const DistTxnManager&) = delete;

  /// Read timestamp for a read-only query: the broadcast LCT.
  Timestamp ReadTimestamp() const { return lct_; }

  /// Starts an update transaction; its snapshot is the current LCT.
  TxnId Begin();

  /// Buffered writes. Lock-free at this point (OCC): conflicts surface at
  /// prepare time, not here.
  Status AddVertex(TxnId txn, VertexId v, LabelId label);
  Status AddEdge(TxnId txn, VertexId src, LabelId elabel, VertexId dst,
                 Value prop = Value());
  Status DeleteEdge(TxnId txn, VertexId src, LabelId elabel, VertexId dst);
  Status SetProperty(TxnId txn, VertexId v, PropKeyId key, Value value);

  /// Discards an open (not yet committing) transaction.
  void Abort(TxnId txn);

  /// Event-driven commit. `done` fires exactly once, when the transaction is
  /// fully applied everywhere (its commit timestamp, with the LCT advanced
  /// through it) or finally aborted after max_attempts conflicts.
  void CommitAsync(TxnId txn,
                   std::function<void(Result<Timestamp>, SimTime)> done);

  /// Phased commit: synchronous validate + lock + apply with internal
  /// conflict retries. With a chaos hook armed, the targeted transaction is
  /// left torn — decided and partially applied but invisible (LCT held
  /// back) — until RecoverDirect() completes it; the returned timestamp is
  /// then its (not yet visible) commit timestamp.
  Result<Timestamp> CommitDirect(TxnId txn);

  /// True while a phased-mode transaction is decided but not fully applied.
  bool HasTorn() const { return !torn_.empty(); }

  /// Crash-recovery for phased mode: wipes every partition's volatile state,
  /// then redoes torn transactions from their durable decision records
  /// (skipping partitions whose applied ledger already has them) and
  /// advances the LCT. Open transactions are discarded.
  void RecoverDirect();

  /// Full crash simulation (tests): volatile wipe + RecoverDirect semantics.
  void SimulateCrashAndRecover();

  /// Live counters; attach to a cluster via AttachTxnStats(&mgr.stats()).
  const obs::TxnSnapshot& stats() const { return stats_; }

  /// Committed schedule in commit-timestamp order (the serializability
  /// oracle replays exactly this against a serial executor).
  const std::vector<std::pair<Timestamp, TxnId>>& commit_log() const {
    return commit_log_;
  }

  uint64_t committed() const { return stats_.committed; }
  uint64_t aborted() const { return stats_.aborted; }
  uint64_t active() const { return txns_.size(); }

  // --- test surface (lock-table invariants, prop_test) ---
  /// Total write locks held across all partitions.
  size_t LocksHeld() const;
  /// Locks held by one transaction across all partitions.
  size_t LocksHeldBy(TxnId txn) const;
  /// Enumerates (partition, vertex, holder) over every held lock.
  void ForEachLock(
      const std::function<void(PartitionId, VertexId, TxnId)>& fn) const;

 private:
  /// One half-op, anchored at a vertex its partition owns. AddEdge/DeleteEdge
  /// split into an out-half at the source and an in-half at the destination,
  /// so each partition writes only anchors it owns (same TEL mirror protocol
  /// as the centralized manager).
  struct SubOp {
    enum class Kind : uint8_t {
      kAddVertex = 0,
      kAddEdgeOut,
      kAddEdgeIn,
      kDelEdgeOut,
      kDelEdgeIn,
      kSetProp,
    };
    Kind kind;
    VertexId anchor = kInvalidVertex;
    VertexId other = kInvalidVertex;
    LabelId label = 0;
    PropKeyId prop_key = 0;
    Value value;
  };

  enum class Phase : uint8_t {
    kOpen = 0,
    kPreparing,
    kBackoff,   // conflict seen; waiting out the retry backoff
    kApplying,  // decided: commit_ts assigned, applies outstanding
  };

  struct Txn {
    TxnId id = 0;
    Timestamp snapshot_ts = 0;
    Phase phase = Phase::kOpen;
    uint32_t attempt = 0;
    uint32_t coordinator = 0;  // worker the protocol messages route through
    std::vector<SubOp> logical;              // buffered ops, program order
    std::map<PartitionId, std::vector<SubOp>> parts;  // split at commit time
    std::set<PartitionId> votes_pending;
    std::set<PartitionId> acked_parts;
    Timestamp commit_ts = 0;
    std::function<void(Result<Timestamp>, SimTime)> done;
  };

  /// Per-partition transaction state at the owning worker.
  struct PartitionTxnState {
    // Volatile (dies with the worker; see OnWorkerCrash):
    std::unordered_map<VertexId, TxnId> locks;    // no-wait write locks
    std::unordered_map<TxnId, uint32_t> prepared; // txn -> prepared attempt
    // Durable (survives a crash, like the TEL):
    std::unordered_map<VertexId, Timestamp> versions;  // last committed write
    std::unordered_set<TxnId> applied;  // commit records (apply idempotence)
  };

  // --- shared by both modes ---
  PartitionId PartitionOfVertex(VertexId v) const;
  void BufferOp(Txn& t, SubOp op);
  void SplitIntoParts(Txn& t);
  /// Anchor-validation + lock claim at one partition. Returns 1 (yes),
  /// 0 (lock conflict) or 2 (version validation failure); claims all the
  /// partition's anchors on yes.
  uint64_t ValidateAndLockAt(PartitionId p, TxnId id, Timestamp snapshot_ts,
                             const std::vector<SubOp>& ops);
  void ReleaseLocksAt(PartitionId p, TxnId id);
  /// Writes one partition's sub-ops into its TEL at `ts`, advances the
  /// version table and the applied ledger, releases the locks. Idempotent.
  void ApplyAt(PartitionId p, TxnId id, Timestamp ts,
               const std::vector<SubOp>& ops);
  void AdvanceLct();
  void FinishCommit(Txn& t, SimTime at);
  void FinalAbort(Txn& t, SimTime at, const std::string& why);

  // --- event-driven protocol ---
  void StartPrepareRound(Txn& t, SimTime at);
  void AbandonRound(Txn& t, SimTime at, const char* why);
  void Decide(Txn& t, SimTime at);
  void SendApply(PartitionId p, SimTime at);
  void ArmApplyWatchdog(PartitionId p, TxnId id, uint32_t resend, SimTime at);
  void HandleTxnMessage(uint32_t worker, const Message& msg);
  void HandlePrepare(uint32_t worker, const Message& msg);
  void HandleVote(const Message& msg, SimTime at);
  void HandleApply(uint32_t worker, const Message& msg);
  void HandleApplyAck(const Message& msg, SimTime at);
  void HandleRelease(const Message& msg);
  void OnWorkerCrash(uint32_t worker, SimTime at);
  Message MakeMsg(uint64_t tag, uint32_t src, uint32_t dst, TxnId id,
                  PartitionId p, uint32_t attempt) const;

  // --- phased protocol ---
  Result<Timestamp> TryCommitDirectOnce(Txn& t);
  void CompleteTorn(TxnId id);

  SimCluster* cluster_ = nullptr;   // null in phased/bare-graph mode
  PartitionedGraph* graph_ = nullptr;
  Options opt_;
  std::unordered_map<TxnId, Txn> txns_;
  std::vector<PartitionTxnState> parts_;
  /// Decided-but-not-fully-applied commit timestamps: the LCT stops just
  /// short of the smallest entry (the all-or-nothing guarantee).
  std::set<Timestamp> pending_commits_;
  /// Per-partition apply pipeline: decided transactions apply at each
  /// partition in commit-timestamp order, one outstanding kApply at a time.
  std::vector<std::deque<TxnId>> apply_queue_;
  /// Phased-mode torn transactions (decided, partially applied), ts order.
  std::map<Timestamp, TxnId> torn_;
  std::vector<std::pair<Timestamp, TxnId>> commit_log_;
  TxnId next_txn_ = 1;
  Timestamp next_ts_ = 1;
  Timestamp last_assigned_ts_ = 0;
  Timestamp lct_ = 0;
  uint64_t prepare_events_ = 0;   // chaos/corrupt counters (protocol actions)
  uint64_t decision_events_ = 0;
  uint64_t apply_events_ = 0;
  obs::TxnSnapshot stats_;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_TXN_DIST_TXN_H_
