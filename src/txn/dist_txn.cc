#include "txn/dist_txn.h"

#include <algorithm>

#include "common/serde.h"
#include "graph/graph.h"

namespace graphdance {

namespace {
// Virtual-time charges, matching the centralized manager: a lock-table probe
// per anchor at prepare, a TEL append per sub-op at apply.
constexpr uint64_t kLockNs = 150;
constexpr uint64_t kApplyNs = 400;

// kControl tags of the commit protocol (all >= kTxnControlTagBase so the
// runtime routes them to the txn handler before the per-query machinery).
constexpr uint64_t kTagPrepare = kTxnControlTagBase + 0;
constexpr uint64_t kTagVote = kTxnControlTagBase + 1;
constexpr uint64_t kTagApply = kTxnControlTagBase + 2;
constexpr uint64_t kTagApplyAck = kTxnControlTagBase + 3;
constexpr uint64_t kTagRelease = kTxnControlTagBase + 4;

// kVote verdicts carried in Message::weight.
constexpr uint64_t kVoteYes = 1;
constexpr uint64_t kVoteLocked = 0;
constexpr uint64_t kVoteStale = 2;
}  // namespace

DistTxnManager::DistTxnManager(SimCluster* cluster, Options opt)
    : cluster_(cluster), graph_(&cluster->mutable_graph()), opt_(opt) {
  parts_.resize(graph_->num_partitions());
  apply_queue_.resize(graph_->num_partitions());
  cluster_->SetTxnHandler([this](uint32_t worker, const Message& msg) {
    HandleTxnMessage(worker, msg);
  });
  cluster_->SetCrashObserver(
      [this](uint32_t worker, SimTime at) { OnWorkerCrash(worker, at); });
  cluster_->AttachTxnStats(&stats_);
}

DistTxnManager::DistTxnManager(SimCluster* cluster)
    : DistTxnManager(cluster, Options()) {}

DistTxnManager::DistTxnManager(PartitionedGraph* graph, Options opt)
    : cluster_(nullptr), graph_(graph), opt_(opt) {
  parts_.resize(graph_->num_partitions());
  apply_queue_.resize(graph_->num_partitions());
}

DistTxnManager::DistTxnManager(PartitionedGraph* graph)
    : DistTxnManager(graph, Options()) {}

DistTxnManager::~DistTxnManager() {
  if (cluster_ != nullptr) {
    cluster_->SetTxnHandler(nullptr);
    cluster_->SetCrashObserver(nullptr);
    cluster_->AttachTxnStats(nullptr);
  }
}

PartitionId DistTxnManager::PartitionOfVertex(VertexId v) const {
  return graph_->PartitionOf(v);
}

DistTxnManager::TxnId DistTxnManager::Begin() {
  TxnId id = next_txn_++;
  Txn& t = txns_[id];
  t.id = id;
  t.snapshot_ts = lct_;
  t.coordinator =
      cluster_ == nullptr
          ? 0
          : static_cast<uint32_t>(id % cluster_->config().total_workers());
  stats_.begun++;
  return t.id;
}

void DistTxnManager::BufferOp(Txn& t, SubOp op) {
  t.logical.push_back(std::move(op));
}

Status DistTxnManager::AddVertex(TxnId id, VertexId v, LabelId label) {
  auto it = txns_.find(id);
  if (it == txns_.end() || it->second.phase != Phase::kOpen) {
    return Status::NotFound("unknown or committing transaction");
  }
  SubOp op;
  op.kind = SubOp::Kind::kAddVertex;
  op.anchor = v;
  op.label = label;
  BufferOp(it->second, std::move(op));
  return Status::OK();
}

Status DistTxnManager::AddEdge(TxnId id, VertexId src, LabelId elabel,
                               VertexId dst, Value prop) {
  auto it = txns_.find(id);
  if (it == txns_.end() || it->second.phase != Phase::kOpen) {
    return Status::NotFound("unknown or committing transaction");
  }
  // Both half-edges are buffered, each anchored at the vertex its owning
  // partition stores; both anchors get validated and locked at prepare.
  SubOp out;
  out.kind = SubOp::Kind::kAddEdgeOut;
  out.anchor = src;
  out.other = dst;
  out.label = elabel;
  out.value = prop;
  BufferOp(it->second, std::move(out));
  SubOp in;
  in.kind = SubOp::Kind::kAddEdgeIn;
  in.anchor = dst;
  in.other = src;
  in.label = elabel;
  in.value = std::move(prop);
  BufferOp(it->second, std::move(in));
  return Status::OK();
}

Status DistTxnManager::DeleteEdge(TxnId id, VertexId src, LabelId elabel,
                                  VertexId dst) {
  auto it = txns_.find(id);
  if (it == txns_.end() || it->second.phase != Phase::kOpen) {
    return Status::NotFound("unknown or committing transaction");
  }
  SubOp out;
  out.kind = SubOp::Kind::kDelEdgeOut;
  out.anchor = src;
  out.other = dst;
  out.label = elabel;
  BufferOp(it->second, std::move(out));
  SubOp in;
  in.kind = SubOp::Kind::kDelEdgeIn;
  in.anchor = dst;
  in.other = src;
  in.label = elabel;
  BufferOp(it->second, std::move(in));
  return Status::OK();
}

Status DistTxnManager::SetProperty(TxnId id, VertexId v, PropKeyId key,
                                   Value value) {
  auto it = txns_.find(id);
  if (it == txns_.end() || it->second.phase != Phase::kOpen) {
    return Status::NotFound("unknown or committing transaction");
  }
  SubOp op;
  op.kind = SubOp::Kind::kSetProp;
  op.anchor = v;
  op.prop_key = key;
  op.value = std::move(value);
  BufferOp(it->second, std::move(op));
  return Status::OK();
}

void DistTxnManager::Abort(TxnId id) {
  auto it = txns_.find(id);
  if (it == txns_.end() || it->second.phase != Phase::kOpen) return;
  // Open transactions hold nothing (OCC: locks are claimed at prepare).
  txns_.erase(it);
  stats_.aborted++;
}

void DistTxnManager::SplitIntoParts(Txn& t) {
  t.parts.clear();
  for (const SubOp& op : t.logical) {
    t.parts[PartitionOfVertex(op.anchor)].push_back(op);
  }
}

// ---- participant-side state machines ---------------------------------------

uint64_t DistTxnManager::ValidateAndLockAt(PartitionId p, TxnId id,
                                           Timestamp snapshot_ts,
                                           const std::vector<SubOp>& ops) {
  PartitionTxnState& ps = parts_[p];
  if (ps.applied.count(id) > 0) {
    // A stale retry of a transaction this partition already committed; the
    // coordinator's attempt fence discards the vote, but answer honestly.
    return kVoteYes;
  }
  // Distinct anchors, first-seen order (ops of one txn at one partition).
  std::vector<VertexId> anchors;
  for (const SubOp& op : ops) {
    if (std::find(anchors.begin(), anchors.end(), op.anchor) == anchors.end()) {
      anchors.push_back(op.anchor);
    }
  }
  for (VertexId a : anchors) {
    auto lock = ps.locks.find(a);
    if (lock != ps.locks.end() && lock->second != id) {
      stats_.conflicts_locked++;
      return kVoteLocked;
    }
    auto ver = ps.versions.find(a);
    if (ver != ps.versions.end() && ver->second > snapshot_ts) {
      // First-committer-wins: someone committed past our snapshot.
      stats_.validation_failed++;
      return kVoteStale;
    }
  }
  for (VertexId a : anchors) {
    auto [it, inserted] = ps.locks.try_emplace(a, id);
    (void)it;
    if (inserted) stats_.locks_claimed++;
  }
  return kVoteYes;
}

void DistTxnManager::ReleaseLocksAt(PartitionId p, TxnId id) {
  PartitionTxnState& ps = parts_[p];
  for (auto it = ps.locks.begin(); it != ps.locks.end();) {
    if (it->second == id) {
      it = ps.locks.erase(it);
    } else {
      ++it;
    }
  }
  ps.prepared.erase(id);
}

void DistTxnManager::ApplyAt(PartitionId p, TxnId id, Timestamp ts,
                             const std::vector<SubOp>& ops) {
  PartitionTxnState& ps = parts_[p];
  if (ps.applied.count(id) == 0) {
    auto write = [&](PartitionStore& store) {
      TransactionalEdgeLog& tel = store.tel();
      for (const SubOp& op : ops) {
        switch (op.kind) {
          case SubOp::Kind::kAddVertex:
            tel.AddVertex(op.anchor, op.label, ts);
            break;
          case SubOp::Kind::kAddEdgeOut:
            tel.AddEdge(op.anchor, op.label, Direction::kOut, op.other, ts,
                        op.value);
            break;
          case SubOp::Kind::kAddEdgeIn:
            tel.AddEdge(op.anchor, op.label, Direction::kIn, op.other, ts,
                        op.value);
            break;
          case SubOp::Kind::kDelEdgeOut:
            tel.DeleteEdge(op.anchor, op.label, Direction::kOut, op.other, ts);
            break;
          case SubOp::Kind::kDelEdgeIn:
            tel.DeleteEdge(op.anchor, op.label, Direction::kIn, op.other, ts);
            break;
          case SubOp::Kind::kSetProp:
            tel.SetProperty(op.anchor, op.prop_key, op.value, ts);
            break;
        }
      }
    };
    if (cluster_ != nullptr) {
      cluster_->ApplyAtPartition(p, kLockNs + kApplyNs * ops.size(), write);
    } else {
      write(graph_->partition(p));
    }
    for (const SubOp& op : ops) {
      Timestamp& ver = ps.versions[op.anchor];
      ver = std::max(ver, ts);
    }
    ps.applied.insert(id);  // the durable commit record
  }
  ReleaseLocksAt(p, id);
}

void DistTxnManager::AdvanceLct() {
  lct_ = pending_commits_.empty() ? last_assigned_ts_
                                  : *pending_commits_.begin() - 1;
  stats_.last_commit_ts = lct_;
}

void DistTxnManager::OnWorkerCrash(uint32_t worker, SimTime /*at*/) {
  // Partitions map 1:1 onto workers (WorkerOfPartition is the identity), so
  // the crash takes exactly one partition's volatile transaction state.
  if (worker >= parts_.size()) return;
  PartitionTxnState& ps = parts_[worker];
  if (!ps.locks.empty() || !ps.prepared.empty()) stats_.crash_wipes++;
  ps.locks.clear();
  ps.prepared.clear();
}

// ---- wire format ------------------------------------------------------------

Message DistTxnManager::MakeMsg(uint64_t tag, uint32_t src, uint32_t dst,
                                TxnId id, PartitionId p,
                                uint32_t attempt) const {
  Message m;
  m.kind = MessageKind::kControl;
  m.src_worker = src;
  m.dst_worker = dst;
  m.query_id = kTxnQueryIdBase + id;
  m.scope_id = p;
  m.tag = tag;
  m.attempt = attempt;
  return m;
}

// ---- event-driven protocol --------------------------------------------------

void DistTxnManager::CommitAsync(
    TxnId id, std::function<void(Result<Timestamp>, SimTime)> done) {
  auto it = txns_.find(id);
  if (it == txns_.end() || it->second.phase != Phase::kOpen) {
    done(Status::NotFound("unknown or committing transaction"),
         cluster_ == nullptr ? 0 : cluster_->now());
    return;
  }
  Txn& t = it->second;
  t.done = std::move(done);
  SplitIntoParts(t);
  SimTime now = cluster_->now();
  if (t.parts.empty()) {
    // Empty write set: committed trivially at the current LCT.
    Timestamp ts = lct_;
    auto cb = std::move(t.done);
    txns_.erase(it);
    stats_.committed++;
    cb(ts, now);
    return;
  }
  StartPrepareRound(t, now);
}

void DistTxnManager::StartPrepareRound(Txn& t, SimTime at) {
  t.attempt++;
  t.phase = Phase::kPreparing;
  t.votes_pending.clear();
  for (const auto& [p, ops] : t.parts) t.votes_pending.insert(p);
  TxnId id = t.id;
  uint32_t attempt = t.attempt;
  for (const auto& [p, ops] : t.parts) {
    Message m = MakeMsg(kTagPrepare, t.coordinator,
                        cluster_->WorkerOfPartition(p), id, p, attempt);
    ByteWriter w;
    w.WriteU64(t.snapshot_ts);
    w.WriteU32(static_cast<uint32_t>(ops.size()));
    for (const SubOp& op : ops) {
      w.WriteU8(static_cast<uint8_t>(op.kind));
      w.WriteU64(op.anchor);
      w.WriteU64(op.other);
      w.WriteU32(op.label);
      w.WriteU32(op.prop_key);
      op.value.Serialize(&w);
    }
    m.payload = w.Take();
    stats_.prepares_sent++;
    prepare_events_++;
    uint32_t dst = m.dst_worker;
    cluster_->TxnSend(t.coordinator, std::move(m));
    if (opt_.crash_phase == CrashPhase::kPrepare &&
        prepare_events_ == opt_.crash_nth) {
      // The owner dies with the prepare on the wire: the vote never comes,
      // the round times out, and the retry must find a clean incarnation.
      stats_.crashes_injected++;
      cluster_->InjectCrash(dst, opt_.crash_restart_ns);
    }
  }
  // Round-1 watchdog: missing votes (crashed participant, dropped message)
  // abandon this attempt rather than wedging the transaction.
  cluster_->ScheduleAt(at + opt_.prepare_timeout_ns,
                       [this, id, attempt](SimTime t2) {
                         auto it = txns_.find(id);
                         if (it == txns_.end()) return;
                         Txn& txn = it->second;
                         if (txn.phase != Phase::kPreparing ||
                             txn.attempt != attempt) {
                           return;
                         }
                         AbandonRound(txn, t2, "prepare timeout");
                       });
}

void DistTxnManager::AbandonRound(Txn& t, SimTime at, const char* why) {
  // Release whatever the yes-voters claimed; participants that never saw the
  // prepare treat the release as a no-op. Release delivery is best-effort —
  // a lost release can only delay later transactions (their prepares see a
  // stale lock and retry), never break serializability.
  for (const auto& [p, ops] : t.parts) {
    Message m = MakeMsg(kTagRelease, t.coordinator,
                        cluster_->WorkerOfPartition(p), t.id, p, t.attempt);
    cluster_->TxnSend(t.coordinator, std::move(m));
  }
  if (t.attempt >= opt_.max_attempts) {
    FinalAbort(t, at, why);
    return;
  }
  stats_.retried++;
  t.phase = Phase::kBackoff;
  TxnId id = t.id;
  uint32_t attempt = t.attempt;
  SimTime backoff = opt_.retry_backoff_ns
                    << std::min<uint32_t>(t.attempt - 1, 10);
  cluster_->ScheduleAt(at + backoff, [this, id, attempt](SimTime t2) {
    auto it = txns_.find(id);
    if (it == txns_.end()) return;
    Txn& txn = it->second;
    if (txn.phase != Phase::kBackoff || txn.attempt != attempt) return;
    StartPrepareRound(txn, t2);
  });
}

void DistTxnManager::FinalAbort(Txn& t, SimTime at, const std::string& why) {
  stats_.aborted++;
  auto cb = std::move(t.done);
  TxnId id = t.id;
  txns_.erase(id);
  if (cb) cb(Status::Aborted(why), at);
}

void DistTxnManager::Decide(Txn& t, SimTime at) {
  t.phase = Phase::kApplying;
  t.commit_ts = next_ts_++;
  last_assigned_ts_ = t.commit_ts;
  pending_commits_.insert(t.commit_ts);
  commit_log_.emplace_back(t.commit_ts, t.id);
  decision_events_++;
  if (opt_.crash_phase == CrashPhase::kCommit &&
      decision_events_ == opt_.crash_nth) {
    // Crash the first participant at the moment of decision: its kApply is
    // lost and the transaction stays torn — invisible — until the apply
    // watchdog re-delivers to the restarted incarnation.
    stats_.crashes_injected++;
    cluster_->InjectCrash(cluster_->WorkerOfPartition(t.parts.begin()->first),
                          opt_.crash_restart_ns);
  }
  for (const auto& [p, ops] : t.parts) {
    apply_queue_[p].push_back(t.id);
    if (apply_queue_[p].size() == 1) SendApply(p, at);
  }
}

void DistTxnManager::SendApply(PartitionId p, SimTime at) {
  TxnId id = apply_queue_[p].front();
  Txn& t = txns_.at(id);
  const std::vector<SubOp>& ops = t.parts.at(p);
  Message m = MakeMsg(kTagApply, t.coordinator, cluster_->WorkerOfPartition(p),
                      id, p, t.attempt);
  m.weight = t.commit_ts;
  apply_events_++;
  size_t n = ops.size();
  if (opt_.corrupt_nth_apply != 0 && apply_events_ == opt_.corrupt_nth_apply &&
      n > 0) {
    n--;  // planted bug: the last sub-op silently vanishes from the wire
  }
  ByteWriter w;
  w.WriteU32(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    const SubOp& op = ops[i];
    w.WriteU8(static_cast<uint8_t>(op.kind));
    w.WriteU64(op.anchor);
    w.WriteU64(op.other);
    w.WriteU32(op.label);
    w.WriteU32(op.prop_key);
    op.value.Serialize(&w);
  }
  m.payload = w.Take();
  stats_.applies_sent++;
  uint32_t dst = m.dst_worker;
  cluster_->TxnSend(t.coordinator, std::move(m));
  if (opt_.crash_phase == CrashPhase::kApply &&
      apply_events_ == opt_.crash_nth) {
    stats_.crashes_injected++;
    cluster_->InjectCrash(dst, opt_.crash_restart_ns);
  }
  ArmApplyWatchdog(p, id, /*resend=*/0, at);
}

void DistTxnManager::ArmApplyWatchdog(PartitionId p, TxnId id, uint32_t resend,
                                      SimTime at) {
  SimTime delay = opt_.apply_retry_ns << std::min<uint32_t>(resend, 6);
  cluster_->ScheduleAt(at + delay, [this, p, id, resend](SimTime t2) {
    auto it = txns_.find(id);
    if (it == txns_.end()) return;                 // fully committed already
    if (it->second.acked_parts.count(p) > 0) return;
    if (apply_queue_[p].empty() || apply_queue_[p].front() != id) return;
    // Decided transactions must finish: re-send the self-contained apply
    // (idempotent at the participant via the applied ledger) until acked.
    stats_.apply_retries++;
    TxnId front = id;
    Txn& t = txns_.at(front);
    const std::vector<SubOp>& ops = t.parts.at(p);
    Message m = MakeMsg(kTagApply, t.coordinator,
                        cluster_->WorkerOfPartition(p), front, p, t.attempt);
    m.weight = t.commit_ts;
    ByteWriter w;
    w.WriteU32(static_cast<uint32_t>(ops.size()));
    for (const SubOp& op : ops) {
      w.WriteU8(static_cast<uint8_t>(op.kind));
      w.WriteU64(op.anchor);
      w.WriteU64(op.other);
      w.WriteU32(op.label);
      w.WriteU32(op.prop_key);
      op.value.Serialize(&w);
    }
    m.payload = w.Take();
    stats_.applies_sent++;
    cluster_->TxnSend(t.coordinator, std::move(m));
    ArmApplyWatchdog(p, front, resend + 1, t2);
  });
}

void DistTxnManager::HandleTxnMessage(uint32_t worker, const Message& msg) {
  switch (msg.tag) {
    case kTagPrepare:
      HandlePrepare(worker, msg);
      break;
    case kTagVote:
      HandleVote(msg, cluster_->now());
      break;
    case kTagApply:
      HandleApply(worker, msg);
      break;
    case kTagApplyAck:
      HandleApplyAck(msg, cluster_->now());
      break;
    case kTagRelease:
      HandleRelease(msg);
      break;
    default:
      break;
  }
}

void DistTxnManager::HandlePrepare(uint32_t worker, const Message& msg) {
  TxnId id = msg.query_id - kTxnQueryIdBase;
  PartitionId p = msg.scope_id;
  ByteReader r(msg.payload);
  Timestamp snapshot_ts = r.ReadU64();
  uint32_t n = r.ReadU32();
  std::vector<SubOp> ops;
  ops.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SubOp op;
    op.kind = static_cast<SubOp::Kind>(r.ReadU8());
    op.anchor = r.ReadU64();
    op.other = r.ReadU64();
    op.label = static_cast<LabelId>(r.ReadU32());
    op.prop_key = static_cast<PropKeyId>(r.ReadU32());
    op.value = Value::Deserialize(&r);
    ops.push_back(std::move(op));
  }
  // Charge the lock-table probes to this worker's clock.
  if (cluster_ != nullptr) {
    cluster_->ApplyAtPartition(p, kLockNs * (ops.size() + 1),
                               [](PartitionStore&) {});
  }
  uint64_t verdict = ValidateAndLockAt(p, id, snapshot_ts, ops);
  if (verdict == kVoteYes) parts_[p].prepared[id] = msg.attempt;
  Message vote = MakeMsg(kTagVote, worker, msg.src_worker, id, p, msg.attempt);
  vote.weight = verdict;
  cluster_->TxnSend(worker, std::move(vote));
}

void DistTxnManager::HandleVote(const Message& msg, SimTime at) {
  TxnId id = msg.query_id - kTxnQueryIdBase;
  auto it = txns_.find(id);
  if (it == txns_.end()) return;
  Txn& t = it->second;
  // Attempt fence: votes from an abandoned round say nothing about this one.
  if (t.phase != Phase::kPreparing || msg.attempt != t.attempt) return;
  if (msg.weight == kVoteYes) {
    stats_.votes_yes++;
    t.votes_pending.erase(msg.scope_id);
    if (t.votes_pending.empty()) Decide(t, at);
    return;
  }
  stats_.votes_no++;
  AbandonRound(t, at, msg.weight == kVoteLocked ? "write-write conflict"
                                                : "snapshot validation failed");
}

void DistTxnManager::HandleApply(uint32_t worker, const Message& msg) {
  TxnId id = msg.query_id - kTxnQueryIdBase;
  PartitionId p = msg.scope_id;
  Timestamp ts = msg.weight;
  ByteReader r(msg.payload);
  uint32_t n = r.ReadU32();
  std::vector<SubOp> ops;
  ops.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SubOp op;
    op.kind = static_cast<SubOp::Kind>(r.ReadU8());
    op.anchor = r.ReadU64();
    op.other = r.ReadU64();
    op.label = static_cast<LabelId>(r.ReadU32());
    op.prop_key = static_cast<PropKeyId>(r.ReadU32());
    op.value = Value::Deserialize(&r);
    ops.push_back(std::move(op));
  }
  ApplyAt(p, id, ts, ops);
  Message ack = MakeMsg(kTagApplyAck, worker, msg.src_worker, id, p,
                        msg.attempt);
  ack.weight = ts;
  cluster_->TxnSend(worker, std::move(ack));
}

void DistTxnManager::HandleApplyAck(const Message& msg, SimTime at) {
  TxnId id = msg.query_id - kTxnQueryIdBase;
  PartitionId p = msg.scope_id;
  auto it = txns_.find(id);
  if (it == txns_.end()) return;  // duplicate ack after the commit finished
  Txn& t = it->second;
  if (t.phase != Phase::kApplying) return;
  if (!t.acked_parts.insert(p).second) return;  // duplicate ack
  stats_.applies_acked++;
  if (!apply_queue_[p].empty() && apply_queue_[p].front() == id) {
    apply_queue_[p].pop_front();
    if (!apply_queue_[p].empty()) SendApply(p, at);
  }
  if (t.acked_parts.size() == t.parts.size()) {
    pending_commits_.erase(t.commit_ts);
    AdvanceLct();
    FinishCommit(t, at);
  }
}

void DistTxnManager::HandleRelease(const Message& msg) {
  TxnId id = msg.query_id - kTxnQueryIdBase;
  ReleaseLocksAt(msg.scope_id, id);
}

void DistTxnManager::FinishCommit(Txn& t, SimTime at) {
  stats_.committed++;
  Timestamp ts = t.commit_ts;
  auto cb = std::move(t.done);
  txns_.erase(t.id);
  if (cb) cb(ts, at);
}

// ---- phased (direct) protocol ----------------------------------------------

Result<Timestamp> DistTxnManager::CommitDirect(TxnId id) {
  auto it = txns_.find(id);
  if (it == txns_.end() || it->second.phase != Phase::kOpen) {
    return Status::NotFound("unknown or committing transaction");
  }
  Txn& t = it->second;
  SplitIntoParts(t);
  if (t.parts.empty()) {
    Timestamp ts = lct_;
    txns_.erase(it);
    stats_.committed++;
    return ts;
  }
  while (true) {
    t.attempt++;
    Result<Timestamp> r = TryCommitDirectOnce(t);
    if (r.ok()) return r;
    if (t.attempt >= opt_.max_attempts) {
      stats_.aborted++;
      txns_.erase(id);
      return Status::Aborted("retries exhausted: " + r.status().message());
    }
    stats_.retried++;
  }
}

Result<Timestamp> DistTxnManager::TryCommitDirectOnce(Txn& t) {
  // Round 1: validate + lock every touched partition, owner order.
  for (const auto& [p, ops] : t.parts) {
    stats_.prepares_sent++;
    prepare_events_++;
    if (opt_.crash_phase == CrashPhase::kPrepare &&
        prepare_events_ == opt_.crash_nth) {
      // The owner dies mid-prepare: its volatile claims evaporate and the
      // round fails; the retry finds the clean restarted incarnation.
      stats_.crashes_injected++;
      if (!parts_[p].locks.empty() || !parts_[p].prepared.empty()) {
        stats_.crash_wipes++;
      }
      parts_[p].locks.clear();
      parts_[p].prepared.clear();
      for (const auto& [q, qops] : t.parts) ReleaseLocksAt(q, t.id);
      stats_.votes_no++;
      return Status::Aborted("participant crashed during prepare");
    }
    uint64_t verdict = ValidateAndLockAt(p, t.id, t.snapshot_ts, ops);
    if (verdict != kVoteYes) {
      stats_.votes_no++;
      for (const auto& [q, qops] : t.parts) ReleaseLocksAt(q, t.id);
      return Status::Aborted(verdict == kVoteLocked
                                 ? "write-write conflict"
                                 : "snapshot validation failed");
    }
    stats_.votes_yes++;
    parts_[p].prepared[t.id] = t.attempt;
  }
  // Decision: durable commit record at the next timestamp.
  t.phase = Phase::kApplying;
  t.commit_ts = next_ts_++;
  last_assigned_ts_ = t.commit_ts;
  pending_commits_.insert(t.commit_ts);
  commit_log_.emplace_back(t.commit_ts, t.id);
  decision_events_++;
  if (opt_.crash_phase == CrashPhase::kCommit &&
      decision_events_ == opt_.crash_nth) {
    // Crash at the decision point: decided, nothing applied, LCT held back.
    stats_.crashes_injected++;
    PartitionId first = t.parts.begin()->first;
    if (!parts_[first].locks.empty() || !parts_[first].prepared.empty()) {
      stats_.crash_wipes++;
    }
    parts_[first].locks.clear();
    parts_[first].prepared.clear();
    torn_[t.commit_ts] = t.id;
    return t.commit_ts;
  }
  // Round 2: apply in owner order; a chaos crash tears the transaction
  // between partitions, leaving a strict prefix applied.
  for (const auto& [p, ops] : t.parts) {
    apply_events_++;
    if (opt_.crash_phase == CrashPhase::kApply &&
        apply_events_ == opt_.crash_nth) {
      stats_.crashes_injected++;
      if (!parts_[p].locks.empty() || !parts_[p].prepared.empty()) {
        stats_.crash_wipes++;
      }
      parts_[p].locks.clear();
      parts_[p].prepared.clear();
      torn_[t.commit_ts] = t.id;
      return t.commit_ts;
    }
    stats_.applies_sent++;
    if (opt_.corrupt_nth_apply != 0 &&
        apply_events_ == opt_.corrupt_nth_apply && !ops.empty()) {
      std::vector<SubOp> torn_ops(ops.begin(), ops.end() - 1);
      ApplyAt(p, t.id, t.commit_ts, torn_ops);
    } else {
      ApplyAt(p, t.id, t.commit_ts, ops);
    }
    stats_.applies_acked++;
  }
  Timestamp ts = t.commit_ts;
  pending_commits_.erase(ts);
  AdvanceLct();
  stats_.committed++;
  txns_.erase(t.id);
  return ts;
}

void DistTxnManager::CompleteTorn(TxnId id) {
  Txn& t = txns_.at(id);
  for (const auto& [p, ops] : t.parts) {
    if (parts_[p].applied.count(id) > 0) {
      // Already applied pre-crash; just drop any stranded locks.
      ReleaseLocksAt(p, id);
      continue;
    }
    stats_.applies_sent++;
    stats_.apply_retries++;
    ApplyAt(p, id, t.commit_ts, ops);
    stats_.applies_acked++;
  }
  pending_commits_.erase(t.commit_ts);
  stats_.committed++;
  txns_.erase(id);
}

void DistTxnManager::RecoverDirect() {
  // Every owner restarts: volatile lock tables and prepared sets are gone.
  for (PartitionTxnState& ps : parts_) {
    if (!ps.locks.empty() || !ps.prepared.empty()) stats_.crash_wipes++;
    ps.locks.clear();
    ps.prepared.clear();
  }
  // Redo torn transactions from their durable decision records, commit-ts
  // order; the applied ledger makes re-application idempotent. (The
  // centralized manager recovers by undo — TruncateAfter(LCT) — because it
  // has no decision record; here the decision is durable, so a decided
  // transaction always completes.)
  std::vector<TxnId> torn;
  for (const auto& [ts, id] : torn_) torn.push_back(id);
  torn_.clear();
  for (TxnId id : torn) CompleteTorn(id);
  AdvanceLct();
  // Open (undecided) transactions died with the crash.
  std::vector<TxnId> open;
  for (const auto& [id, t] : txns_) {
    if (t.phase == Phase::kOpen) open.push_back(id);
  }
  for (TxnId id : open) txns_.erase(id);
}

void DistTxnManager::SimulateCrashAndRecover() { RecoverDirect(); }

// ---- test surface -----------------------------------------------------------

size_t DistTxnManager::LocksHeld() const {
  size_t n = 0;
  for (const PartitionTxnState& ps : parts_) n += ps.locks.size();
  return n;
}

size_t DistTxnManager::LocksHeldBy(TxnId id) const {
  size_t n = 0;
  for (const PartitionTxnState& ps : parts_) {
    for (const auto& [v, holder] : ps.locks) {
      if (holder == id) n++;
    }
  }
  return n;
}

void DistTxnManager::ForEachLock(
    const std::function<void(PartitionId, VertexId, TxnId)>& fn) const {
  for (PartitionId p = 0; p < parts_.size(); ++p) {
    for (const auto& [v, holder] : parts_[p].locks) fn(p, v, holder);
  }
}

}  // namespace graphdance
