#ifndef GRAPHDANCE_TXN_TXN_MANAGER_H_
#define GRAPHDANCE_TXN_TXN_MANAGER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "runtime/sim_cluster.h"

namespace graphdance {

/// Transactional processing support (paper §IV-C): multi-version storage via
/// the transactional edge log (TEL), MV2PL concurrency control, and a
/// centralized transaction manager maintaining the last-commit timestamp
/// (LCT). Read-only queries never block: they pick up the broadcast LCT as
/// their read timestamp and read a consistent snapshot from the TEL.
///
/// Write transactions acquire vertex-granularity write locks (no-wait 2PL:
/// a conflicting lock request aborts the requester), buffer their writes,
/// and apply them at commit with the commit timestamp embedded in the TEL
/// entries.
class TransactionManager {
 public:
  using TxnId = uint64_t;

  explicit TransactionManager(SimCluster* cluster) : cluster_(cluster) {}

  /// Read timestamp for a read-only query: the current LCT, fetched from
  /// any worker node without consulting the manager (LCT is broadcast).
  Timestamp ReadTimestamp() const { return lct_; }

  /// Starts a new update transaction.
  TxnId Begin();

  /// Buffered writes; each acquires the anchor vertex's write lock.
  Status AddVertex(TxnId txn, VertexId v, LabelId label);
  Status AddEdge(TxnId txn, VertexId src, LabelId elabel, VertexId dst,
                 Value prop = Value());
  Status DeleteEdge(TxnId txn, VertexId src, LabelId elabel, VertexId dst);
  Status SetProperty(TxnId txn, VertexId v, PropKeyId key, Value value);

  /// Assigns the commit timestamp, applies the write set to the owning
  /// partitions (charging their workers virtual time), releases locks and
  /// advances + broadcasts the LCT.
  Result<Timestamp> Commit(TxnId txn);

  /// Releases locks and discards buffered writes.
  void Abort(TxnId txn);

  /// Crash-recovery simulation: discards in-flight transactions and has
  /// every partition truncate TEL versions beyond the LCT, exactly as a
  /// restarted cluster would (paper §IV-C).
  void SimulateCrashAndRecover();

  /// Multi-version GC: compacts every partition's TEL, dropping versions
  /// invisible to readers at or beyond `watermark`. The caller guarantees no
  /// active query holds an older read timestamp (e.g. watermark = oldest
  /// active snapshot, or the LCT when the system is quiescent).
  void CompactAll(Timestamp watermark);

  /// Test/fault-injection hook: applies `txn`'s writes with a fresh
  /// timestamp but crashes before the LCT advances — the partial commit
  /// must be invisible to reads and undone by recovery.
  void CrashDuringCommit(TxnId txn);

  uint64_t committed() const { return committed_; }
  uint64_t aborted() const { return aborted_; }
  uint64_t active() const { return txns_.size(); }

 private:
  /// One buffered write operation.
  struct WriteOp {
    enum class Kind : uint8_t { kAddVertex, kAddEdge, kDeleteEdge, kSetProp };
    Kind kind;
    VertexId v = kInvalidVertex;  // anchor (src for edges)
    VertexId other = kInvalidVertex;
    LabelId label = kInvalidLabel;
    PropKeyId prop_key = kInvalidPropKey;
    Value value;
  };

  struct TxnState {
    std::vector<WriteOp> writes;
    std::unordered_set<VertexId> locks;
  };

  void ApplyWrites(const TxnState& txn, Timestamp ts);

  /// No-wait write lock: returns false (conflict) when another transaction
  /// holds the lock.
  Status Lock(TxnState& txn, TxnId id, VertexId v);
  void ReleaseLocks(TxnState& txn);

  SimCluster* cluster_;
  std::unordered_map<VertexId, TxnId> lock_table_;
  std::unordered_map<TxnId, TxnState> txns_;
  TxnId next_txn_ = 1;
  Timestamp next_ts_ = 1;
  Timestamp lct_ = 0;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
};

}  // namespace graphdance

#endif  // GRAPHDANCE_TXN_TXN_MANAGER_H_
