// Multi-tenant overload curve (DESIGN.md §11): open-loop Poisson arrivals
// from two client classes pushed at 0.5x, 1x, 2x and 4x the cluster's
// calibrated capacity, with QoS governance on. Reports, per offered-load
// point: p50/p95/p99 latency of completed queries, goodput, shed rate and
// the peak queued task bytes — the curve the admission controller and the
// budgets are supposed to bend (graceful shedding instead of collapse).
//
// Gated exit (CI): at 0.5x capacity nothing may be shed; at 4x capacity the
// per-worker queued task bytes must stay within the configured budget plus
// a one-message/local-fanout slack. Writes BENCH_overload.json.
//
// Flags: --scale S (default 0.25), --queries N per point (default 160),
//        --seed R (default 31)

#include <cmath>
#include <fstream>
#include <iomanip>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/metrics.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

constexpr uint64_t kTaskBudgetBytes = 256u << 10;
constexpr uint64_t kTaskBudgetSlack = 128u << 10;  // local fan-out overshoot

ClusterConfig OverloadConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.workers_per_node = 2;
  cfg.qos.enabled = true;
  cfg.qos.max_concurrent_queries = 4;
  cfg.qos.max_queued_queries = 32;
  cfg.qos.class_weights = {2, 1};  // interactive : batch
  cfg.qos.worker_task_budget_bytes = kTaskBudgetBytes;
  return cfg;
}

struct Workload {
  BenchGraph bg;
  std::vector<std::shared_ptr<const Plan>> plans;  // cycled through arrivals
};

Workload MakeWorkload(double scale, uint32_t partitions, uint64_t seed) {
  Workload w;
  w.bg = MakeBenchGraph("lj-sim", scale, partitions);
  Rng rng(seed);
  for (int i = 0; i < 8; ++i) {
    int k = 2 + (i % 2);
    w.plans.push_back(
        KHopPlan(w.bg.graph, w.bg.weight, PickActiveStart(w.bg.graph, &rng), k));
  }
  return w;
}

/// Mean solo virtual latency of the workload (one query on an idle cluster,
/// governance off). Reported for context; NOT used to size the load, because
/// concurrent queries contend for the same workers and the achievable rate is
/// well below slots / solo-latency.
double CalibrateSoloNanos(const Workload& w) {
  ClusterConfig cfg = OverloadConfig();
  cfg.qos.enabled = false;
  double total = 0;
  for (const auto& plan : w.plans) {
    SimCluster cluster(cfg, w.bg.graph);
    auto res = cluster.Run(plan);
    if (!res.ok()) {
      std::fprintf(stderr, "calibration run failed: %s\n",
                   res.status().ToString().c_str());
      std::exit(2);
    }
    total += static_cast<double>(res.value().LatencyNanos());
  }
  return total / static_cast<double>(w.plans.size());
}

/// Sustainable capacity of the governed cluster in queries per virtual
/// second: a closed burst of N queries at t=0 (backlog sized so nothing
/// sheds), capacity = N / makespan. This bakes in the worker contention the
/// admission slots actually experience, so "1x" below means the knee of the
/// real curve.
double CalibrateCapacityQps(const Workload& w) {
  ClusterConfig cfg = OverloadConfig();
  constexpr int kBurst = 48;
  cfg.qos.max_queued_queries = kBurst;  // hold the whole burst, shed nothing
  SimCluster cluster(cfg, w.bg.graph);
  for (int i = 0; i < kBurst; ++i) {
    cluster.Submit(w.plans[i % w.plans.size()], /*at=*/0);
  }
  Status st = cluster.RunToCompletion();
  if (!st.ok()) {
    std::fprintf(stderr, "capacity calibration failed: %s\n",
                 st.ToString().c_str());
    std::exit(2);
  }
  return static_cast<double>(kBurst) /
         (static_cast<double>(cluster.quiescent_time()) / 1e9);
}

struct LoadPoint {
  double multiplier = 0.0;
  double offered_qps = 0.0;  // virtual queries per second
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t timed_out = 0;  // admitted but aborted by the deadline timer
  double shed_rate = 0.0;
  double goodput_qps = 0.0;
  uint64_t p50_us = 0, p95_us = 0, p99_us = 0;
  uint64_t admission_wait_p95_us = 0;
  uint64_t peak_queued = 0;
  uint64_t peak_task_bytes = 0;
};

LoadPoint RunPoint(const Workload& w, double capacity_qps, double multiplier,
                   int num_queries, uint64_t seed) {
  ClusterConfig cfg = OverloadConfig();
  // Offered rate in queries per virtual nanosecond.
  double rate = multiplier * capacity_qps / 1e9;
  // Batch-class deadline: three quarters of the time a full backlog takes to
  // drain. A saturated queue hovers near max_queued, so at 2x-4x the batch
  // class sheds on deadline from the backlog; at 0.5x waits are near zero
  // and the deadline never fires.
  SimTime deadline_ns = static_cast<SimTime>(
      0.75 * cfg.qos.max_queued_queries / capacity_qps * 1e9);

  SimCluster cluster(cfg, w.bg.graph);
  Rng rng(seed);
  double arrive = 0.0;
  std::vector<uint64_t> ids;
  for (int i = 0; i < num_queries; ++i) {
    // Exponential inter-arrival: -ln(1 - U) / rate.
    arrive += -std::log(1.0 - rng.NextDouble()) / rate;
    uint32_t cls = rng.Chance(0.5) ? 0 : 1;
    ids.push_back(cluster.Submit(w.plans[i % w.plans.size()],
                                 static_cast<SimTime>(arrive),
                                 kMaxTimestamp - 1, cls == 1 ? deadline_ns : 0,
                                 cls));
  }
  Status st = cluster.RunToCompletion();
  if (!st.ok()) {
    std::fprintf(stderr, "overload point %.1fx failed: %s\n", multiplier,
                 st.ToString().c_str());
    std::exit(2);
  }

  LoadPoint p;
  p.multiplier = multiplier;
  p.offered_qps = rate * 1e9;
  p.submitted = ids.size();
  obs::LogHistogram lat;
  for (uint64_t id : ids) {
    const QueryResult& r = cluster.result(id);
    if (r.resource_exhausted) {
      ++p.shed;
    } else if (r.timed_out) {
      ++p.timed_out;
    } else if (r.done && !r.failed) {
      ++p.completed;
      lat.Record(r.LatencyNanos());
    }
  }
  p.shed_rate = static_cast<double>(p.shed) / static_cast<double>(p.submitted);
  SimTime makespan = cluster.quiescent_time();
  p.goodput_qps = makespan == 0 ? 0.0
                                : static_cast<double>(p.completed) /
                                      (static_cast<double>(makespan) / 1e9);
  p.p50_us = lat.P50() / 1000;
  p.p95_us = lat.P95() / 1000;
  p.p99_us = lat.P99() / 1000;
  obs::MetricsSnapshot snap = cluster.MetricsSnapshot();
  auto wait = snap.latency.find("admission-wait");
  if (wait != snap.latency.end()) {
    p.admission_wait_p95_us = wait->second.P95() / 1000;
  }
  p.peak_queued = snap.qos.peak_queued;
  p.peak_task_bytes = snap.qos.peak_task_bytes;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int num_queries = static_cast<int>(ArgDouble(argc, argv, "--queries", 160));
  uint64_t seed = static_cast<uint64_t>(ArgDouble(argc, argv, "--seed", 31));
  PrintHeader("Overload: multi-tenant admission + backpressure curve");

  ClusterConfig cfg = OverloadConfig();
  Workload w = MakeWorkload(scale, cfg.num_partitions(), seed);
  double solo_ns = CalibrateSoloNanos(w);
  double capacity_qps = CalibrateCapacityQps(w);
  std::printf("calibrated: solo latency %.1f us, sustained capacity %.1f q/s "
              "(%u admission slots)\n\n",
              solo_ns / 1000.0, capacity_qps,
              cfg.qos.max_concurrent_queries);

  std::printf("%6s | %9s %6s %5s %5s %7s %9s %9s %9s %9s %11s %10s\n", "load",
              "offered/s", "done", "shed", "t/o", "shed%", "goodput/s",
              "p50 us", "p95 us", "p99 us", "wait p95 us", "peak qB");
  std::vector<LoadPoint> points;
  for (double m : {0.5, 1.0, 2.0, 4.0}) {
    LoadPoint p = RunPoint(w, capacity_qps, m, num_queries, seed + 7);
    std::printf("%5.1fx | %9.1f %6lu %5lu %5lu %6.1f%% %9.1f %9lu %9lu %9lu "
                "%11lu %10lu\n",
                p.multiplier, p.offered_qps, (unsigned long)p.completed,
                (unsigned long)p.shed, (unsigned long)p.timed_out,
                100.0 * p.shed_rate, p.goodput_qps,
                (unsigned long)p.p50_us, (unsigned long)p.p95_us,
                (unsigned long)p.p99_us, (unsigned long)p.admission_wait_p95_us,
                (unsigned long)p.peak_task_bytes);
    points.push_back(p);
  }

  // Fixed-point with explicit precision: default ostream precision renders
  // large doubles in lossy scientific notation, which breaks trajectory
  // diffing on the JSON.
  std::ofstream json("BENCH_overload.json");
  json << std::fixed << std::setprecision(3);
  json << "{\n  \"task_budget_bytes\": " << kTaskBudgetBytes
       << ",\n  \"solo_latency_ns\": " << solo_ns
       << ",\n  \"capacity_qps\": " << capacity_qps << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    json << "    {\"offered_multiplier\": " << p.multiplier
         << ", \"offered_qps\": " << p.offered_qps
         << ", \"submitted\": " << p.submitted
         << ", \"completed\": " << p.completed << ", \"shed\": " << p.shed
         << ", \"timed_out\": " << p.timed_out
         << ", \"shed_rate\": " << p.shed_rate
         << ", \"goodput_qps\": " << p.goodput_qps
         << ", \"p50_us\": " << p.p50_us << ", \"p95_us\": " << p.p95_us
         << ", \"p99_us\": " << p.p99_us
         << ", \"admission_wait_p95_us\": " << p.admission_wait_p95_us
         << ", \"peak_queued\": " << p.peak_queued
         << ", \"peak_task_bytes\": " << p.peak_task_bytes << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_overload.json\n");

  // --- gated exit ---------------------------------------------------------
  int rc = 0;
  if (points.front().shed != 0 || points.front().timed_out != 0) {
    std::fprintf(stderr,
                 "GATE FAILED: %lu shed / %lu timed out at 0.5x capacity "
                 "(want 0/0)\n",
                 (unsigned long)points.front().shed,
                 (unsigned long)points.front().timed_out);
    rc = 1;
  }
  const LoadPoint& hot = points.back();
  if (hot.peak_task_bytes > kTaskBudgetBytes + kTaskBudgetSlack) {
    std::fprintf(stderr,
                 "GATE FAILED: peak queued task bytes %lu at 4x capacity "
                 "exceed budget %lu + slack %lu\n",
                 (unsigned long)hot.peak_task_bytes,
                 (unsigned long)kTaskBudgetBytes,
                 (unsigned long)kTaskBudgetSlack);
    rc = 1;
  }
  if (rc == 0) std::printf("gates passed: no shedding at 0.5x, queue bytes bounded at 4x\n");
  return rc;
}
