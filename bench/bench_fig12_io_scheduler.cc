// Figure 12: impact of the two-tiered I/O scheduler on the k-hop workload:
// baseline synchronous per-message sends, + thread-level combining (TLC),
// + node-level combining (NLC, full GraphDance).
//
// Flags: --scale S (default 0.25), --trials N (default 3)

#include "bench/bench_common.h"

using namespace graphdance;
using namespace graphdance::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int trials = static_cast<int>(ArgDouble(argc, argv, "--trials", 3));
  PrintHeader("Figure 12: two-tiered I/O scheduler (SyncSend vs +TLC vs +NLC)");

  std::printf("%-10s %-4s %14s %14s %14s %12s\n", "graph", "k", "sync (us)",
              "+TLC (us)", "+TLC+NLC (us)", "TLC speedup");
  for (const char* preset : {"lj-sim", "fs-sim"}) {
    double s = preset[0] == 'f' ? scale * 0.5 : scale;
    for (int k : {2, 3, 4}) {
      ClusterConfig cfg;
      cfg.num_nodes = 8;
      cfg.workers_per_node = 2;
      BenchGraph bg = MakeBenchGraph(preset, s, cfg.num_partitions());

      cfg.io_mode = IoMode::kSyncSend;
      double sync_us = AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials);
      cfg.io_mode = IoMode::kTlcOnly;
      double tlc_us = AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials);
      cfg.io_mode = IoMode::kTlcNlc;
      double nlc_us = AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials);

      std::printf("%-10s %-4d %14.0f %14.0f %14.0f %11.1fx\n", preset, k, sync_us,
                  tlc_us, nlc_us, sync_us / tlc_us);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape (paper): TLC dominates (up to ~16x on the largest\n"
      "query) by collapsing per-message syscalls; NLC adds a minor gain on\n"
      "large queries and can slightly hurt small latency-bound ones (it adds\n"
      "a combining delay).\n");
  return 0;
}
