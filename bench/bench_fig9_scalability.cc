// Figure 9: vertical (threads per node) and horizontal (nodes) scalability
// of the k-hop query on the lj-sim / fs-sim graphs, for GraphDance (async
// PSTM), BSP, GAIA-sim and Banyan-sim.
//
// Flags: --scale S (graph size multiplier, default 0.25)
//        --trials N (starts per cell, default 3)

#include "bench/bench_common.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

void RunSweep(const char* preset, double scale, int trials) {
  const EngineKind engines[] = {EngineKind::kAsync, EngineKind::kBsp,
                                EngineKind::kGaiaSim, EngineKind::kBanyanSim};

  std::printf("\n--- %s (scale %.2f): VERTICAL scalability (1 node, w workers) ---\n",
              preset, scale);
  std::printf("%-12s %-8s", "engine", "k");
  for (uint32_t w : {1, 2, 4, 8, 16}) std::printf("  w=%-9u", w);
  std::printf("\n");
  for (EngineKind engine : engines) {
    for (int k : {2, 3, 4}) {
      std::printf("%-12s %-8d", EngineKindName(engine), k);
      for (uint32_t w : {1, 2, 4, 8, 16}) {
        BenchGraph bg = MakeBenchGraph(preset, scale, w);
        ClusterConfig cfg;
        cfg.num_nodes = 1;
        cfg.workers_per_node = w;
        cfg.engine = engine;
        double us = AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials);
        std::printf("  %-10.0f", us);
        std::fflush(stdout);
      }
      std::printf("  us\n");
    }
  }

  std::printf("\n--- %s (scale %.2f): HORIZONTAL scalability (n nodes x 4 workers) ---\n",
              preset, scale);
  std::printf("%-12s %-8s", "engine", "k");
  for (uint32_t n : {1, 2, 4, 8}) std::printf("  n=%-9u", n);
  std::printf("\n");
  for (EngineKind engine : engines) {
    for (int k : {2, 3, 4}) {
      std::printf("%-12s %-8d", EngineKindName(engine), k);
      for (uint32_t n : {1, 2, 4, 8}) {
        BenchGraph bg = MakeBenchGraph(preset, scale, n * 4);
        ClusterConfig cfg;
        cfg.num_nodes = n;
        cfg.workers_per_node = 4;
        cfg.engine = engine;
        double us = AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials);
        std::printf("  %-10.0f", us);
        std::fflush(stdout);
      }
      std::printf("  us\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int trials = static_cast<int>(ArgDouble(argc, argv, "--trials", 3));
  PrintHeader("Figure 9: k-hop scalability, GraphDance vs BSP / GAIA / Banyan");
  RunSweep("lj-sim", scale, trials);
  RunSweep("fs-sim", scale * 0.5, trials);  // fs-sim is ~5x denser
  std::printf(
      "\nExpected shapes (paper): GraphDance near-linear; GAIA/Banyan flatten\n"
      "(per-worker operator overhead); BSP best only on the largest query\n"
      "(fs 4-hop) where barriers amortize; Banyan can beat GraphDance at\n"
      "small worker counts on 4-hop (lower per-traverser tracking).\n");
  return 0;
}
