#ifndef GRAPHDANCE_BENCH_BENCH_COMMON_H_
#define GRAPHDANCE_BENCH_BENCH_COMMON_H_

// Shared scaffolding for the paper-reproduction benchmark binaries. Each
// binary regenerates one table or figure of the evaluation section; the
// harness prints the same rows/series the paper reports (virtual-time
// latencies from the DES cluster — see DESIGN.md §1 and EXPERIMENTS.md).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/logging.h"
#include "graph/generators.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"

namespace graphdance {
namespace bench {

/// The paper's k-hop scalability workload (Fig. 1 / §V-B): top-10 weighted
/// vertices within k hops, averaged over `trials` random start vertices.
inline std::shared_ptr<const Plan> KHopPlan(
    const std::shared_ptr<PartitionedGraph>& graph, PropKeyId weight_key,
    VertexId start, int k) {
  return Traversal(graph)
      .V({start})
      .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
      .Project({Operand::VertexIdOp(), Operand::Property(weight_key)})
      .OrderByLimit({{1, false}, {0, true}}, 10)
      .Build()
      .TakeValue();
}

/// Samples a start vertex with outgoing edges (isolated vertices make
/// trivially empty queries; real-graph starts come from the giant
/// component).
inline VertexId PickActiveStart(const std::shared_ptr<PartitionedGraph>& graph,
                                Rng* rng, LabelId link = 0) {
  VertexId start = rng->Below(graph->stats().num_vertices);
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (graph->partition(graph->PartitionOf(start))
            .Degree(start, link, Direction::kOut, kMaxTimestamp - 1) > 0) {
      break;
    }
    start = rng->Below(graph->stats().num_vertices);
  }
  return start;
}

/// Runs the k-hop query from `trials` seeded random starts on a fresh
/// cluster per trial; returns the average virtual latency in microseconds.
/// (The paper: "the starting vertex is randomly selected from all vertices
/// for 100 times and the average is reported" — we default to fewer trials
/// to keep the harness fast; pass --trials to raise it.)
///
/// Message counts and percentiles come from each cluster's MetricsSnapshot()
/// (the unified registry): `stats_out` accumulates the network counters,
/// `snapshot_out` the full snapshot (latency histograms, per-link traffic,
/// per-step traverser counts) across all trials.
inline double AvgKHopLatency(const ClusterConfig& config,
                             const std::shared_ptr<PartitionedGraph>& graph,
                             PropKeyId weight_key, int k, int trials,
                             uint64_t seed = 31, NetStats* stats_out = nullptr,
                             obs::MetricsSnapshot* snapshot_out = nullptr) {
  Rng rng(seed);
  LatencyRecorder rec;
  for (int t = 0; t < trials; ++t) {
    VertexId start = PickActiveStart(graph, &rng);
    SimCluster cluster(config, graph);
    auto res = cluster.Run(KHopPlan(graph, weight_key, start, k));
    if (!res.ok()) {
      std::fprintf(stderr, "k-hop run failed: %s\n", res.status().ToString().c_str());
      continue;
    }
    rec.Record(res.value().LatencyMicros());
    if (stats_out != nullptr || snapshot_out != nullptr) {
      obs::MetricsSnapshot snap = cluster.MetricsSnapshot();
      if (stats_out != nullptr) stats_out->Merge(snap.net);
      if (snapshot_out != nullptr) snapshot_out->Merge(snap);
    }
  }
  return rec.Avg();
}

/// Builds one of the two scalability graphs ("lj-sim" / "fs-sim") at the
/// given partition count. `scale` grows the dataset (1.0 = default preset).
struct BenchGraph {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  PropKeyId weight;
};

inline BenchGraph MakeBenchGraph(const std::string& preset, double scale,
                                 uint32_t partitions, uint64_t seed = 42) {
  BenchGraph bg;
  bg.schema = std::make_shared<Schema>();
  bg.graph = GeneratePreset(preset, scale, bg.schema, partitions, seed).TakeValue();
  bg.weight = bg.schema->PropKey("weight");
  return bg;
}

/// Simple "--flag value" argument lookup.
inline double ArgDouble(int argc, char** argv, const std::string& flag,
                        double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return std::stod(argv[i + 1]);
  }
  return fallback;
}

inline void PrintHeader(const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("(virtual-time reproduction; see EXPERIMENTS.md for the\n");
  std::printf(" paper-vs-measured comparison of shapes)\n");
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace graphdance

#endif  // GRAPHDANCE_BENCH_BENCH_COMMON_H_
