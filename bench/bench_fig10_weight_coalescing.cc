// Figure 10: impact of weight coalescing (WC) on k-hop query latency.
// Compares the full GraphDance configuration against one with WC disabled
// (every finished traverser reports its weight to the tracker directly).
//
// Flags: --scale S (default 0.25), --trials N (default 3)

#include "bench/bench_common.h"

using namespace graphdance;
using namespace graphdance::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int trials = static_cast<int>(ArgDouble(argc, argv, "--trials", 3));
  PrintHeader("Figure 10: weight coalescing (WC) impact on query latency");

  std::printf("%-10s %-4s %14s %14s %10s\n", "graph", "k", "with WC (us)",
              "without (us)", "saved");
  for (const char* preset : {"lj-sim", "fs-sim"}) {
    double s = preset[0] == 'f' ? scale * 0.5 : scale;
    for (int k : {2, 3, 4}) {
      ClusterConfig cfg;
      cfg.num_nodes = 8;
      cfg.workers_per_node = 2;
      BenchGraph bg = MakeBenchGraph(preset, s, cfg.num_partitions());

      cfg.weight_coalescing = true;
      double with_wc = AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials);
      cfg.weight_coalescing = false;
      double without_wc = AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials);

      std::printf("%-10s %-4d %14.0f %14.0f %9.1f%%\n", preset, k, with_wc,
                  without_wc, 100.0 * (1.0 - with_wc / without_wc));
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape (paper): WC saves up to ~78%% on the large queries by\n"
      "removing the centralized tracker bottleneck; on the smallest queries\n"
      "the coalescing delay can make latency slightly worse.\n");
  return 0;
}
