// Table II: summaries of the evaluation datasets — vertex count, edge count
// and raw size — for the laptop-scale stand-ins of the paper's four graphs,
// printed next to the original numbers for calibration.
//
// Flags: --scale S (default 0.25 for the web graphs),
//        --persons N (default 1200 for snb-sf300-sim; sf1000-sim uses 3x)

#include "bench/bench_common.h"
#include "ldbc/snb_generator.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

void PrintRow(const char* name, uint64_t nv, uint64_t ne, uint64_t bytes,
              const char* paper) {
  std::printf("%-18s %14lu %15lu %10.1f MB   | paper: %s\n", name,
              (unsigned long)nv, (unsigned long)ne,
              static_cast<double>(bytes) / (1024.0 * 1024.0), paper);
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  uint64_t persons =
      static_cast<uint64_t>(ArgDouble(argc, argv, "--persons", 1200));
  PrintHeader("Table II: dataset summaries (laptop-scale stand-ins)");

  std::printf("%-18s %14s %15s %13s\n", "dataset", "#vertices", "#edges",
              "raw size");

  auto sf300 = GenerateSnb(SnbConfig::Tiny(persons), 16).TakeValue();
  PrintRow("snb-sf300-sim", sf300->graph->stats().num_vertices,
           sf300->graph->stats().num_edges, sf300->graph->stats().raw_bytes,
           "970M vertices, 6.73B edges, 256 GB");
  auto sf1000 = GenerateSnb(SnbConfig::Tiny(persons * 3), 16).TakeValue();
  PrintRow("snb-sf1000-sim", sf1000->graph->stats().num_vertices,
           sf1000->graph->stats().num_edges, sf1000->graph->stats().raw_bytes,
           "2.93B vertices, 20.7B edges, 862 GB");

  BenchGraph lj = MakeBenchGraph("lj-sim", scale, 16);
  PrintRow("lj-sim", lj.graph->stats().num_vertices, lj.graph->stats().num_edges,
           lj.graph->stats().raw_bytes, "4.00M vertices, 34.7M edges, 464 MB");
  BenchGraph fs = MakeBenchGraph("fs-sim", scale, 16);
  PrintRow("fs-sim", fs.graph->stats().num_vertices, fs.graph->stats().num_edges,
           fs.graph->stats().raw_bytes, "65.6M vertices, 1.81B edges, 31 GB");

  std::printf(
      "\nThe stand-ins preserve the papers' structural ratios: snb-sf1000 is\n"
      "~3x snb-sf300; lj has avg degree ~8.7, fs ~27 with power-law skew.\n");
  double lj_deg = static_cast<double>(lj.graph->stats().num_edges) /
                  lj.graph->stats().num_vertices;
  double fs_deg = static_cast<double>(fs.graph->stats().num_edges) /
                  fs.graph->stats().num_vertices;
  std::printf("measured: lj-sim avg degree %.1f, fs-sim avg degree %.1f\n", lj_deg,
              fs_deg);
  return 0;
}
