// Real-thread scalability of the ThreadCluster runtime (DESIGN.md §14):
// the wall-clock suite's three workloads executed on 1..N OS threads, same
// graphs, same plans, shared-nothing partition ownership. Unlike
// bench_wallclock (which measures how fast one host thread turns the
// simulator crank) this measures actual parallel speedup of the PSTM hot
// path on real cores.
//
// Workloads (mirroring bench_wallclock):
//   topk      — k-hop top-10 mix (lj-sim, k = 2/3/4), all queries submitted
//               to one cluster per thread count
//   pathcount — non-dedup path counting (fs-sim, k = 2/3), the bulking-heavy
//               merge path
//   ldbc-ic   — LDBC SNB interactive complex mix + one concurrent batch
//
// Correctness gate (always enforced): the order-sensitive FNV over every
// query's rows must be byte-identical at every thread count — the
// differential guarantee, re-checked in the perf harness so a scalability
// "win" can never come from dropping or reordering work. The binary exits
// non-zero on any fingerprint divergence.
//
// Speedup gates (enforced only when the host has >= 4 hardware threads;
// on smaller hosts the numbers are recorded but oversubscribed threads
// cannot speed anything up): wall time monotone non-increasing over
// 1 -> 2 -> 4 threads (10% tolerance), and >= 1.5x at 4 threads on at
// least 2 of the 3 workloads.
//
// Writes BENCH_threads.json (fixed-point doubles, per-workload series).
//
// Flags: --scale S (default 0.25), --trials N (default 3),
//        --persons P (default 800), --concurrent C (default 12),
//        --max-threads T (default max(4, hardware_concurrency))

#include <chrono>
#include <fstream>
#include <iomanip>
#include <thread>

#include "bench/bench_common.h"
#include "common/hash.h"
#include "ldbc/driver.h"
#include "ldbc/snb_queries.h"
#include "rt/thread_cluster.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

constexpr uint64_t kFnvSeed = 0xcbf29ce484222325ULL;
constexpr uint32_t kPartitions = 16;  // matches bench_wallclock's 8x2 grid

uint64_t HashRows(uint64_t h, const std::vector<Row>& rows) {
  h = HashCombine(h, rows.size());
  for (const Row& row : rows) {
    h = HashCombine(h, row.size());
    for (const Value& v : row) h = HashCombine(h, v.Hash());
  }
  return h;
}

/// One workload = a graph plus the full plan list; every thread count runs
/// the identical batch on a fresh cluster over the same graph.
struct Workload {
  const char* name;
  std::shared_ptr<PartitionedGraph> graph;
  std::vector<std::shared_ptr<const Plan>> plans;
};

struct Sample {
  uint32_t threads = 0;
  double wall_ms = 0.0;
  uint64_t tasks = 0;
  double tasks_per_sec = 0.0;
  uint64_t rows_fnv = kFnvSeed;
  bool ok = false;
};

Sample RunWorkload(const Workload& wl, uint32_t threads) {
  rt::ThreadClusterConfig cfg;
  cfg.num_threads = threads;
  Sample s;
  s.threads = threads;

  auto t0 = std::chrono::steady_clock::now();
  rt::ThreadCluster cluster(cfg, wl.graph);
  std::vector<uint64_t> ids;
  ids.reserve(wl.plans.size());
  for (const auto& plan : wl.plans) ids.push_back(cluster.Submit(plan));
  Status st = cluster.RunToCompletion();
  auto t1 = std::chrono::steady_clock::now();
  if (!st.ok()) {
    std::fprintf(stderr, "%s @ %u threads failed: %s\n", wl.name, threads,
                 st.ToString().c_str());
    return s;
  }
  // Submit order, not completion order: the fingerprint must not depend on
  // which thread finished first.
  for (uint64_t id : ids) s.rows_fnv = HashRows(s.rows_fnv, cluster.result(id).rows);
  s.wall_ms = std::chrono::duration_cast<
                  std::chrono::duration<double, std::milli>>(t1 - t0)
                  .count();
  s.tasks = cluster.TotalTasksExecuted();
  s.tasks_per_sec =
      s.wall_ms <= 0.0 ? 0.0 : static_cast<double>(s.tasks) / (s.wall_ms / 1000.0);
  s.ok = true;
  return s;
}

Workload MakeTopk(double scale, int trials) {
  Workload wl;
  wl.name = "topk";
  BenchGraph bg = MakeBenchGraph("lj-sim", scale, kPartitions);
  wl.graph = bg.graph;
  for (int k : {2, 3, 4}) {
    Rng rng(31);
    for (int t = 0; t < trials; ++t) {
      VertexId start = PickActiveStart(bg.graph, &rng);
      wl.plans.push_back(KHopPlan(bg.graph, bg.weight, start, k));
    }
  }
  return wl;
}

Workload MakePathCount(double scale, int trials) {
  Workload wl;
  wl.name = "pathcount";
  BenchGraph bg = MakeBenchGraph("fs-sim", scale * 0.25, kPartitions);
  wl.graph = bg.graph;
  for (int k : {2, 3}) {
    Rng rng(47);
    for (int t = 0; t < trials; ++t) {
      VertexId start = PickActiveStart(bg.graph, &rng);
      auto plan = Traversal(bg.graph)
                      .V({start})
                      .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/false)
                      .Count()
                      .Build();
      if (plan.ok()) wl.plans.push_back(plan.TakeValue());
    }
  }
  return wl;
}

Workload MakeLdbcIc(const SnbDataset& data, int concurrent) {
  Workload wl;
  wl.name = "ldbc-ic";
  wl.graph = data.graph;
  const int kMix[] = {1, 2, 3, 5, 6, 9};
  for (int number : kMix) {
    SnbParamGen gen(data, 100 + number);
    SnbParams p = gen.Next();
    auto plan = BuildInteractiveComplex(number, data, p);
    if (plan.ok()) wl.plans.push_back(plan.TakeValue());
  }
  SnbParamGen gen(data, 500);
  for (int i = 0; i < concurrent; ++i) {
    SnbParams p = gen.Next();
    auto plan = BuildInteractiveComplex(kMix[i % 6], data, p);
    if (plan.ok()) wl.plans.push_back(plan.TakeValue());
  }
  return wl;
}

struct Series {
  const char* name;
  std::vector<Sample> samples;

  const Sample* At(uint32_t threads) const {
    for (const Sample& s : samples) {
      if (s.threads == threads && s.ok) return &s;
    }
    return nullptr;
  }
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int trials = static_cast<int>(ArgDouble(argc, argv, "--trials", 3));
  uint64_t persons =
      static_cast<uint64_t>(ArgDouble(argc, argv, "--persons", 800));
  int concurrent = static_cast<int>(ArgDouble(argc, argv, "--concurrent", 12));
  const uint32_t hc = std::max(1u, std::thread::hardware_concurrency());
  uint32_t max_threads = static_cast<uint32_t>(
      ArgDouble(argc, argv, "--max-threads", std::max(4u, hc)));
  PrintHeader("Real threads: ThreadCluster scalability, multi-workload suite");
  std::printf("hardware_concurrency = %u, measuring 1..%u threads\n", hc,
              max_threads);

  // Doubling thread counts 1,2,4,... capped at max_threads (always including
  // max_threads itself so "1 -> hardware_concurrency" is the measured span).
  std::vector<uint32_t> counts;
  for (uint32_t t = 1; t < max_threads; t *= 2) counts.push_back(t);
  counts.push_back(max_threads);

  std::vector<Workload> workloads;
  workloads.push_back(MakeTopk(scale, trials));
  workloads.push_back(MakePathCount(scale, trials));
  {
    auto data = GenerateSnb(SnbConfig::Tiny(persons), kPartitions).TakeValue();
    workloads.push_back(MakeLdbcIc(*data, concurrent));
    // `data` owns the graph; workload keeps a shared_ptr so this scope can end.
  }

  // Warm-up: one single-thread pass over the smallest workload.
  RunWorkload(workloads[1], 1);

  std::printf("%-9s %8s | %10s %12s %14s | %7s  %s\n", "workload", "threads",
              "wall ms", "tasks", "tasks/sec", "speedup", "rows");
  std::vector<Series> series;
  bool rows_equal = true;
  for (const Workload& wl : workloads) {
    Series s{wl.name, {}};
    for (uint32_t t : counts) {
      Sample smp = RunWorkload(wl, t);
      if (smp.ok) {
        const Sample& base = s.samples.empty() ? smp : s.samples.front();
        double speedup = smp.wall_ms <= 0.0 ? 0.0 : base.wall_ms / smp.wall_ms;
        std::printf("%-9s %8u | %10.1f %12lu %14.0f | %6.2fx  %016lx\n",
                    wl.name, t, smp.wall_ms, (unsigned long)smp.tasks,
                    smp.tasks_per_sec, speedup, (unsigned long)smp.rows_fnv);
        if (!s.samples.empty() && smp.rows_fnv != s.samples.front().rows_fnv) {
          std::printf("FAIL: %s rows @ %u threads differ from 1-thread run\n",
                      wl.name, t);
          rows_equal = false;
        }
      } else {
        std::printf("%-9s %8u | FAILED\n", wl.name, t);
        rows_equal = false;
      }
      s.samples.push_back(smp);
    }
    series.push_back(std::move(s));
  }

  // Speedup gates: only meaningful with >= 4 real hardware threads.
  const bool enforce_speedup = hc >= 4 && max_threads >= 4;
  int fast_workloads = 0;
  bool monotone = true;
  for (const Series& s : series) {
    const Sample* w1 = s.At(1);
    const Sample* w2 = s.At(2);
    const Sample* w4 = s.At(4);
    if (w1 == nullptr || w4 == nullptr) continue;
    double speedup4 = w4->wall_ms <= 0.0 ? 0.0 : w1->wall_ms / w4->wall_ms;
    if (speedup4 >= 1.5) ++fast_workloads;
    // 10% tolerance: small workloads jitter; the trend must still point down.
    if (w2 != nullptr &&
        (w2->wall_ms > w1->wall_ms * 1.10 || w4->wall_ms > w2->wall_ms * 1.10)) {
      std::printf("WARN: %s wall time not monotone over 1/2/4 threads\n", s.name);
      monotone = false;
    }
  }
  if (enforce_speedup) {
    std::printf("speedup gate: %d/3 workloads >= 1.5x at 4 threads%s\n",
                fast_workloads, monotone ? "" : " (non-monotone)");
  } else {
    std::printf("speedup gate skipped: hardware_concurrency = %u < 4\n", hc);
  }

  std::ofstream json("BENCH_threads.json");
  json << std::fixed << std::setprecision(3);
  json << "{\n"
       << "  \"hardware_concurrency\": " << hc << ",\n"
       << "  \"max_threads\": " << max_threads << ",\n"
       << "  \"speedup_gate_enforced\": " << (enforce_speedup ? "true" : "false")
       << ",\n"
       << "  \"workloads\": [\n";
  for (size_t i = 0; i < series.size(); ++i) {
    const Series& s = series[i];
    const Sample* w1 = s.At(1);
    const Sample* w4 = s.At(4);
    double speedup4 = (w1 != nullptr && w4 != nullptr && w4->wall_ms > 0.0)
                          ? w1->wall_ms / w4->wall_ms
                          : 0.0;
    json << "    {\n"
         << "      \"name\": \"" << s.name << "\",\n"
         << "      \"speedup_4\": " << speedup4 << ",\n"
         << "      \"series\": [\n";
    for (size_t j = 0; j < s.samples.size(); ++j) {
      const Sample& smp = s.samples[j];
      json << "        {\"threads\": " << smp.threads
           << ", \"wall_ms\": " << smp.wall_ms << ", \"tasks\": " << smp.tasks
           << ", \"tasks_per_sec\": " << smp.tasks_per_sec
           << ", \"rows_fnv\": \"" << std::hex << smp.rows_fnv << std::dec
           << "\"}" << (j + 1 == s.samples.size() ? "\n" : ",\n");
    }
    json << "      ]\n    }" << (i + 1 == series.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_threads.json\n");

  if (!rows_equal) return 1;
  if (enforce_speedup && (fast_workloads < 2 || !monotone)) return 1;
  return 0;
}
