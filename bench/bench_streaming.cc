// Streaming ingest: throughput vs freshness/staleness curve (DESIGN.md §15).
// The same timestamped batch schedule is driven through the event-driven
// ingest pipeline at progressively tighter batch intervals (the load knob),
// with two standing queries re-evaluated at every commit and one snapshot
// query racing each commit at exactly its timestamp. Reports, per load
// point: ingest throughput (ops per virtual second), batch lag (commit
// instant minus the batch's release time) and standing-query staleness
// (evaluation completion minus the commit it evaluated) — the
// freshness-vs-throughput trade the paper's streaming story hangs on.
//
// Gated exit (CI): zero invariant-checker trips — including the
// snapshot-isolation checker — at every load point; every batch commits and
// every racing snapshot query completes; each standing query's cumulative
// emission (deltas folded from empty) equals its final rows equals a
// from-scratch run on the fully-materialized graph; and ingest throughput
// grows monotonically (within tolerance) as the interval tightens — the
// curve measured an actual load sweep, not noise. Writes
// BENCH_streaming.json.
//
// Flags: --batches N     update batches per point      (default 24)
//        --ops N         ops per batch                 (default 128)
//        --seed R        workload seed                 (default 31)

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "check/invariants.h"
#include "check/oracle.h"
#include "obs/metrics.h"
#include "stream/stream.h"

using namespace graphdance;
using namespace graphdance::bench;
using stream::StreamIngestor;
using stream::StreamOp;
using stream::StreamOpKind;
using stream::UpdateBatch;

namespace {

// Throughput may only shrink by this factor between consecutive (tighter)
// load points before the monotonicity gate fires.
constexpr double kMonotoneTolerance = 0.95;

ClusterConfig StreamConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  cfg.progress_timeout_ns = 50'000'000;
  return cfg;
}

/// One deterministic op mix, independent of the load point: edge adds
/// between existing vertices, deletes of previously-streamed edges, and
/// fresh vertices (id space disjoint from the generated graph) arriving with
/// a weight property and an inbound edge. The same rules the stream oracle's
/// scenario generator follows, so grouped-by-partition ingest and sequential
/// materialization agree at every timestamp.
std::vector<std::vector<StreamOp>> MakeBatchOps(const BenchGraph& bg,
                                                size_t num_batches,
                                                size_t ops_per_batch,
                                                uint64_t seed) {
  const uint64_t nv = bg.graph->stats().num_vertices;
  const LabelId link = bg.schema->EdgeLabel("link");
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> live;  // streamed, still visible
  VertexId fresh = 4'000'000;
  std::vector<std::vector<StreamOp>> batches(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    std::vector<std::pair<VertexId, VertexId>> added_this_batch;
    for (size_t i = 0; i < ops_per_batch; ++i) {
      const uint64_t roll = rng.Below(100);
      StreamOp op;
      if (roll < 60) {
        op.kind = StreamOpKind::kAddEdge;
        op.src = rng.Below(nv);
        op.dst = rng.Below(nv);
        op.label = link;
        op.value = Value(static_cast<int64_t>(rng.Below(10'000)));
        added_this_batch.emplace_back(op.src, op.dst);
      } else if (roll < 80 && !live.empty()) {
        // Deletes only target edges streamed by *earlier* batches, so the
        // ingest path (grouped by partition) and the materialize path
        // (sequential) resolve "first visible match" identically.
        const size_t pick = rng.Below(live.size());
        op.kind = StreamOpKind::kDeleteEdge;
        op.src = live[pick].first;
        op.dst = live[pick].second;
        op.label = link;
        live[pick] = live.back();
        live.pop_back();
      } else {
        op.kind = StreamOpKind::kAddVertex;
        op.src = fresh;
        batches[b].push_back(op);
        StreamOp prop;
        prop.kind = StreamOpKind::kSetProp;
        prop.src = fresh;
        prop.key = bg.weight;
        prop.value = Value(static_cast<int64_t>(rng.Below(10'000)));
        batches[b].push_back(prop);
        op.kind = StreamOpKind::kAddEdge;
        op.src = rng.Below(nv);
        op.dst = fresh;
        op.label = link;
        op.value = Value(static_cast<int64_t>(rng.Below(10'000)));
        added_this_batch.emplace_back(op.src, op.dst);
        ++fresh;
      }
      batches[b].push_back(op);
    }
    live.insert(live.end(), added_this_batch.begin(), added_this_batch.end());
  }
  return batches;
}

std::vector<UpdateBatch> AssembleBatches(
    const std::vector<std::vector<StreamOp>>& ops, uint64_t interval_ns) {
  std::vector<UpdateBatch> out;
  for (size_t b = 0; b < ops.size(); ++b) {
    UpdateBatch batch;
    batch.commit_ts = static_cast<Timestamp>((b + 1) * 1000);
    batch.not_before = static_cast<SimTime>((b + 1) * interval_ns);
    batch.ops = ops[b];
    out.push_back(std::move(batch));
  }
  return out;
}

struct LoadPoint {
  uint64_t interval_ns = 0;
  double ops_per_vsec = 0.0;       // applied ops per virtual second
  uint64_t lag_p50_us = 0;         // batch lag: commit at - not_before
  uint64_t lag_p95_us = 0;
  uint64_t staleness_p50_us = 0;   // standing: completion at - commit at
  uint64_t staleness_p95_us = 0;
  uint64_t standing_runs = 0;
  uint64_t conflated = 0;
  uint64_t trips = 0;
  uint64_t snapshot_failures = 0;
  bool standing_identity = false;  // cumulative == rows == final reference
};

LoadPoint RunPoint(const std::vector<std::vector<StreamOp>>& ops,
                   uint64_t interval_ns, uint64_t seed) {
  LoadPoint pt;
  pt.interval_ns = interval_ns;

  // Fresh graph per point: streaming mutates it.
  ClusterConfig cfg = StreamConfig();
  BenchGraph bg = MakeBenchGraph("lj-sim", /*scale=*/0.1, cfg.num_partitions(),
                                 seed);
  std::vector<UpdateBatch> batches = AssembleBatches(ops, interval_ns);
  const Timestamp final_ts = batches.back().commit_ts;

  Rng rng(seed + 1);
  const VertexId start_a = PickActiveStart(bg.graph, &rng);
  const VertexId start_b = PickActiveStart(bg.graph, &rng);
  auto standing_a = KHopPlan(bg.graph, bg.weight, start_a, 2);
  auto standing_b = KHopPlan(bg.graph, bg.weight, start_b, 2);

  SimCluster cluster(cfg, bg.graph);
  auto harness = check::CheckHarness::WithAllCheckers();
  cluster.AttachChecker(harness.get());

  StreamIngestor::Options opt;
  opt.compact_every_batches = 8;
  StreamIngestor ingestor(&cluster, opt);
  cluster.AttachStreamStats(&ingestor.stats());
  for (const UpdateBatch& b : batches) ingestor.EnqueueBatch(b);
  size_t qa = ingestor.AddStandingQuery({standing_a, 0});
  ingestor.AddStandingQuery({standing_b, 0});

  // One snapshot query races every commit at exactly its timestamp.
  std::vector<uint64_t> snapshot_ids;
  std::vector<Timestamp> snapshot_ts;
  ingestor.SetOnBatchCommitted([&](Timestamp ts, SimTime at) {
    ingestor.PinReader(ts);
    snapshot_ids.push_back(cluster.Submit(standing_a, at, ts));
    snapshot_ts.push_back(ts);
  });
  ingestor.Start();
  Status st = cluster.RunToCompletion();
  if (!st.ok() || !ingestor.Drained()) {
    std::fprintf(stderr, "load point %lluns failed: %s (drained=%d)\n",
                 (unsigned long long)interval_ns, st.ToString().c_str(),
                 ingestor.Drained());
    std::exit(2);
  }
  for (Timestamp ts : snapshot_ts) ingestor.UnpinReader(ts);

  pt.trips = harness->trip_count();
  pt.standing_runs = ingestor.stats().standing_runs;
  pt.conflated = ingestor.stats().standing_conflated;
  const double vsec =
      static_cast<double>(cluster.now()) / 1'000'000'000.0;
  pt.ops_per_vsec =
      vsec > 0 ? static_cast<double>(ingestor.stats().ops_applied) / vsec : 0;

  obs::MetricsSnapshot snap = cluster.MetricsSnapshot();
  if (const obs::LogHistogram* lag = snap.Latency("stream-batch-lag")) {
    pt.lag_p50_us = lag->P50() / 1000;
    pt.lag_p95_us = lag->P95() / 1000;
  }
  if (const obs::LogHistogram* stale = snap.Latency("stream-staleness")) {
    pt.staleness_p50_us = stale->P50() / 1000;
    pt.staleness_p95_us = stale->P95() / 1000;
  }

  for (uint64_t id : snapshot_ids) {
    const QueryResult& r = cluster.result(id);
    if (!r.done || r.failed || r.timed_out) ++pt.snapshot_failures;
  }

  // Freshness identity: the standing query's cumulative emission equals its
  // final rows equals a from-scratch run at the final snapshot.
  BenchGraph ref = MakeBenchGraph("lj-sim", 0.1, cfg.num_partitions(), seed);
  for (const UpdateBatch& b : batches) stream::ApplyBatchToGraph(*ref.graph, b);
  SimCluster ref_cluster(StreamConfig(), ref.graph);
  uint64_t ref_id = ref_cluster.Submit(KHopPlan(ref.graph, ref.weight, start_a, 2),
                                       /*at=*/0, final_ts);
  if (!ref_cluster.RunToCompletion().ok()) std::exit(2);
  std::vector<Row> ref_rows =
      check::CanonicalRows(ref_cluster.result(ref_id).rows);
  pt.standing_identity =
      ingestor.standing(qa).last_run_ts == final_ts &&
      ingestor.standing(qa).rows == ref_rows &&
      ingestor.CumulativeRows(qa) == ref_rows;
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  size_t num_batches =
      static_cast<size_t>(ArgDouble(argc, argv, "--batches", 24));
  size_t ops_per_batch = static_cast<size_t>(ArgDouble(argc, argv, "--ops", 128));
  uint64_t seed = static_cast<uint64_t>(ArgDouble(argc, argv, "--seed", 31));
  PrintHeader("Streaming ingest: throughput vs freshness/staleness curve");

  BenchGraph proto = MakeBenchGraph("lj-sim", 0.1,
                                    StreamConfig().num_partitions(), seed);
  std::vector<std::vector<StreamOp>> ops =
      MakeBatchOps(proto, num_batches, ops_per_batch, seed);

  std::printf("%12s | %12s %9s %9s %10s %10s %6s %5s %5s\n", "interval ns",
              "ops/vsec", "lag p50", "lag p95", "stale p50", "stale p95",
              "runs", "confl", "trips");
  const uint64_t kIntervals[] = {2'000'000, 1'000'000, 500'000, 250'000,
                                 125'000};
  std::vector<LoadPoint> points;
  for (uint64_t interval : kIntervals) {
    LoadPoint p = RunPoint(ops, interval, seed);
    std::printf("%12llu | %12.0f %7lluus %7lluus %8lluus %8lluus %6llu %5llu %5llu\n",
                (unsigned long long)p.interval_ns, p.ops_per_vsec,
                (unsigned long long)p.lag_p50_us,
                (unsigned long long)p.lag_p95_us,
                (unsigned long long)p.staleness_p50_us,
                (unsigned long long)p.staleness_p95_us,
                (unsigned long long)p.standing_runs,
                (unsigned long long)p.conflated,
                (unsigned long long)p.trips);
    points.push_back(p);
  }

  // Fixed-point with explicit precision: default ostream precision renders
  // large doubles in lossy scientific notation, which breaks trajectory
  // diffing on the JSON.
  std::ofstream json("BENCH_streaming.json");
  json << std::fixed << std::setprecision(3);
  json << "{\n  \"batches\": " << num_batches
       << ",\n  \"ops_per_batch\": " << ops_per_batch
       << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    json << "    {\"interval_ns\": " << p.interval_ns
         << ", \"ops_per_vsec\": " << p.ops_per_vsec
         << ", \"batch_lag_p50_us\": " << p.lag_p50_us
         << ", \"batch_lag_p95_us\": " << p.lag_p95_us
         << ", \"staleness_p50_us\": " << p.staleness_p50_us
         << ", \"staleness_p95_us\": " << p.staleness_p95_us
         << ", \"standing_runs\": " << p.standing_runs
         << ", \"standing_conflated\": " << p.conflated
         << ", \"checker_trips\": " << p.trips
         << ", \"snapshot_failures\": " << p.snapshot_failures
         << ", \"standing_identity\": "
         << (p.standing_identity ? "true" : "false") << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_streaming.json\n");

  // --- gated exit ---------------------------------------------------------
  int rc = 0;
  for (const LoadPoint& p : points) {
    if (p.trips != 0) {
      std::fprintf(stderr,
                   "GATE FAILED: %llu invariant-checker trips (incl. "
                   "snapshot-isolation) at interval %lluns (want 0)\n",
                   (unsigned long long)p.trips,
                   (unsigned long long)p.interval_ns);
      rc = 1;
    }
    if (p.snapshot_failures != 0) {
      std::fprintf(stderr,
                   "GATE FAILED: %llu racing snapshot queries failed at "
                   "interval %lluns (fault-free run; want 0)\n",
                   (unsigned long long)p.snapshot_failures,
                   (unsigned long long)p.interval_ns);
      rc = 1;
    }
    if (!p.standing_identity) {
      std::fprintf(stderr,
                   "GATE FAILED: standing cumulative emission != final "
                   "materialized snapshot at interval %lluns\n",
                   (unsigned long long)p.interval_ns);
      rc = 1;
    }
  }
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].ops_per_vsec <
        points[i - 1].ops_per_vsec * kMonotoneTolerance) {
      std::fprintf(stderr,
                   "GATE FAILED: ingest throughput fell %.0f -> %.0f ops/vsec "
                   "as the interval tightened (%lluns -> %lluns): the sweep "
                   "measured no load increase\n",
                   points[i - 1].ops_per_vsec, points[i].ops_per_vsec,
                   (unsigned long long)points[i - 1].interval_ns,
                   (unsigned long long)points[i].interval_ns);
      rc = 1;
    }
  }
  if (points.back().staleness_p95_us == 0 && points.back().lag_p95_us == 0) {
    std::fprintf(stderr, "GATE FAILED: the tightest interval shows zero lag "
                         "and zero staleness — the curve measured nothing\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf("gates passed: zero isolation trips at every load point, "
                "standing emissions match materialized snapshots, throughput "
                "scales with load\n");
  }
  return rc;
}
