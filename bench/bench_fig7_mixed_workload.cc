// Figure 7: average and P99 latency of IC and IS queries under the mixed
// LDBC SNB Interactive workload at decreasing Time Compression Ratios
// (higher offered load), for GraphDance vs the distributed-BSP baseline
// (the TigerGraph stand-in; see DESIGN.md §1). A system that cannot keep up
// with the issue rate is reported as DNF — in the paper TigerGraph fails at
// TCR 0.03.
//
// Flags: --persons N (default 1200), --duration S (default 0.3)

#include "bench/bench_common.h"
#include "ldbc/driver.h"
#include "txn/txn_manager.h"

using namespace graphdance;
using namespace graphdance::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  uint64_t persons =
      static_cast<uint64_t>(ArgDouble(argc, argv, "--persons", 1200));
  double duration = ArgDouble(argc, argv, "--duration", 0.3);
  PrintHeader("Figure 7: mixed LDBC SNB interactive workload (IC/IS/UP)");

  ClusterConfig base;
  base.num_nodes = 8;
  base.workers_per_node = 2;
  auto data = GenerateSnb(SnbConfig::Tiny(persons), base.num_partitions()).TakeValue();
  std::printf("dataset: %lu persons, %lu edges\n\n",
              (unsigned long)persons,
              (unsigned long)data->graph->stats().num_edges);

  std::printf("%-14s %-6s | %12s %12s | %12s %12s | %s\n", "engine", "TCR",
              "IC avg(us)", "IC p99(us)", "IS avg(us)", "IS p99(us)", "kept up");
  for (EngineKind engine : {EngineKind::kAsync, EngineKind::kBsp}) {
    for (double tcr : {3.0, 0.3, 0.03}) {
      ClusterConfig cfg = base;
      cfg.engine = engine;
      SimCluster cluster(cfg, data->graph);
      TransactionManager txn(&cluster);
      DriverConfig dcfg;
      dcfg.tcr = tcr;
      dcfg.duration_s = duration;
      // Latency averages/percentiles come from the per-family histograms in
      // the cluster's metrics registry (DriverReport::metrics).
      DriverReport report = RunMixedWorkload(&cluster, &txn, *data, dcfg);
      if (!report.kept_up) {
        std::printf("%-14s %-6.2f | %51s | DNF (makespan %.0f ms for a %.0f ms window)\n",
                    EngineKindName(engine), tcr, "",
                    report.makespan / 1e6, duration * 1e3);
      } else {
        std::printf("%-14s %-6.2f | %12.0f %12.0f | %12.0f %12.0f | yes\n",
                    EngineKindName(engine), tcr, report.AvgLatencyMicros("IC"),
                    report.P99LatencyMicros("IC"), report.AvgLatencyMicros("IS"),
                    report.P99LatencyMicros("IS"));
      }
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape (paper Fig. 7): GraphDance ~88-92%% lower latency than\n"
      "the BSP baseline at TCR 3 and 0.3; the baseline fails (DNF) at the\n"
      "highest load (TCR 0.03) while GraphDance keeps up.\n");
  return 0;
}
