// Ablation: shortest-trajectory-first scheduling vs FIFO (paper §III-B:
// "traversers with a shorter history trajectory are generally scheduled to
// run before those with a lengthier trajectory", which keeps the redundancy
// of memo-pruned asynchronous traversal negligible). FIFO lets long-path
// traversers run before short-path ones, so more vertices are first visited
// at non-minimal distances and must be re-expanded after improvement.
//
// Flags: --scale S (default 0.25), --trials N (default 3)

#include "bench/bench_common.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

struct Cell {
  double latency_us = 0;
  double tasks = 0;
};

Cell Measure(const ClusterConfig& cfg, const BenchGraph& bg, int k, int trials) {
  Cell cell;
  Rng rng(31);
  for (int t = 0; t < trials; ++t) {
    VertexId start = PickActiveStart(bg.graph, &rng);
    SimCluster cluster(cfg, bg.graph);
    auto res = cluster.Run(KHopPlan(bg.graph, bg.weight, start, k));
    if (!res.ok()) continue;
    cell.latency_us += res.value().LatencyMicros() / trials;
    cell.tasks += static_cast<double>(cluster.TotalTasksExecuted()) / trials;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int trials = static_cast<int>(ArgDouble(argc, argv, "--trials", 3));
  PrintHeader("Ablation: shortest-trajectory-first vs FIFO task scheduling");

  std::printf("%-10s %-4s | %12s %12s | %12s %12s | %10s\n", "graph", "k",
              "SF lat(us)", "FIFO lat(us)", "SF tasks", "FIFO tasks",
              "extra work");
  for (const char* preset : {"lj-sim", "fs-sim"}) {
    double s = preset[0] == 'f' ? scale * 0.5 : scale;
    for (int k : {3, 4}) {
      ClusterConfig cfg;
      cfg.num_nodes = 4;
      cfg.workers_per_node = 4;
      BenchGraph bg = MakeBenchGraph(preset, s, cfg.num_partitions());

      cfg.shortest_first_scheduling = true;
      Cell sf = Measure(cfg, bg, k, trials);
      cfg.shortest_first_scheduling = false;
      Cell fifo = Measure(cfg, bg, k, trials);

      std::printf("%-10s %-4d | %12.0f %12.0f | %12.0f %12.0f | %9.1f%%\n",
                  preset, k, sf.latency_us, fifo.latency_us, sf.tasks,
                  fifo.tasks, 100.0 * (fifo.tasks / sf.tasks - 1.0));
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape: FIFO executes more tasks (redundant re-expansions\n"
      "after distance improvements) and has higher latency; the paper's\n"
      "shortest-first policy keeps asynchronous redundancy negligible.\n");
  return 0;
}
