// Real wall-clock throughput of the simulator itself, measured over a
// multi-workload suite with traverser bulking on (default) and off. Unlike
// the figure benches this measures host time, not virtual time: data-layout
// and allocation work on the hot path shows up here and nowhere else,
// because the DES cost model pins virtual time regardless of how fast the
// host executes.
//
// Workloads:
//   topk      — the paper's k-hop top-10 mix (lj-sim, k = 2/3/4)
//   pathcount — non-dedup path counting (fs-sim, k = 2/3): bulking carries
//               multiplicity, so this is the merge-heavy hot path
//   ldbc-ic   — LDBC SNB interactive complex mix: sequential runs plus one
//               concurrent batch (multi-query memo + scheduler pressure)
//
// Each workload also records determinism fingerprints: the virtual-time
// makespan, an order-sensitive FNV over all result rows, and a hash of the
// merged MetricsSnapshot::ToString(). Refactors of the execute/serde path
// must leave every fingerprint byte-identical (bulking on AND off) while
// moving only wall_ms / tasks_per_sec. The binary exits non-zero if the
// bulking-on and bulking-off row fingerprints of any workload disagree.
//
// Writes BENCH_wallclock.json (fixed-point doubles, per-workload entries;
// top-level legacy keys mirror the topk workload for trajectory diffing).
//
// Flags: --scale S (default 0.25), --trials N (default 3),
//        --persons P (default 800), --concurrent C (default 12)

#include <chrono>
#include <fstream>
#include <iomanip>

#include "bench/bench_common.h"
#include "common/hash.h"
#include "ldbc/driver.h"
#include "ldbc/snb_queries.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

constexpr uint64_t kFnvSeed = 0xcbf29ce484222325ULL;

uint64_t HashRows(uint64_t h, const std::vector<Row>& rows) {
  h = HashCombine(h, rows.size());
  for (const Row& row : rows) {
    h = HashCombine(h, row.size());
    for (const Value& v : row) h = HashCombine(h, v.Hash());
  }
  return h;
}

struct WorkloadResult {
  double wall_ms = 0.0;
  uint64_t tasks = 0;
  double tasks_per_sec = 0.0;
  uint64_t makespan_ns = 0;  // summed virtual latencies (+ batch quiescence)
  uint64_t rows_fnv = kFnvSeed;
  uint64_t metrics_fnv = 0;
  obs::MetricsSnapshot snap;

  void Finish(std::chrono::steady_clock::time_point t0) {
    auto t1 = std::chrono::steady_clock::now();
    wall_ms = std::chrono::duration_cast<
                  std::chrono::duration<double, std::milli>>(t1 - t0)
                  .count();
    tasks = snap.tasks_executed;
    tasks_per_sec =
        wall_ms <= 0.0 ? 0.0 : static_cast<double>(tasks) / (wall_ms / 1000.0);
    std::string s = snap.ToString();
    metrics_fnv = HashBytes(s.data(), s.size());
  }
};

// --- topk: the original fixed mixed k-hop workload (kept call-for-call so
// the tasks/s trajectory stays comparable with older BENCH_wallclock.json).
WorkloadResult RunTopk(bool bulking, double scale, int trials) {
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 2;
  cfg.traverser_bulking = bulking;
  BenchGraph bg = MakeBenchGraph("lj-sim", scale, cfg.num_partitions());

  WorkloadResult r;
  auto t0 = std::chrono::steady_clock::now();
  for (int k : {2, 3, 4}) {
    Rng rng(31);
    for (int t = 0; t < trials; ++t) {
      VertexId start = PickActiveStart(bg.graph, &rng);
      SimCluster cluster(cfg, bg.graph);
      auto res = cluster.Run(KHopPlan(bg.graph, bg.weight, start, k));
      if (!res.ok()) continue;
      r.makespan_ns += res.value().LatencyNanos();
      r.rows_fnv = HashRows(r.rows_fnv, res.value().rows);
      r.snap.Merge(cluster.MetricsSnapshot());
    }
  }
  r.Finish(t0);
  return r;
}

// --- pathcount: non-dedup k-step walk counting, the bulking-heavy path.
std::shared_ptr<const Plan> PathCountPlan(
    const std::shared_ptr<PartitionedGraph>& graph, VertexId start, int k) {
  return Traversal(graph)
      .V({start})
      .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/false)
      .Count()
      .Build()
      .TakeValue();
}

WorkloadResult RunPathCount(bool bulking, double scale, int trials) {
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 2;
  cfg.traverser_bulking = bulking;
  // Quarter scale: without bulking the non-dedup walk count explodes
  // multiplicatively with graph size; this keeps the off-mode run in
  // seconds while still exercising the merge-heavy path.
  BenchGraph bg = MakeBenchGraph("fs-sim", scale * 0.25, cfg.num_partitions());

  WorkloadResult r;
  auto t0 = std::chrono::steady_clock::now();
  for (int k : {2, 3}) {
    Rng rng(47);
    for (int t = 0; t < trials; ++t) {
      VertexId start = PickActiveStart(bg.graph, &rng);
      SimCluster cluster(cfg, bg.graph);
      auto res = cluster.Run(PathCountPlan(bg.graph, start, k));
      if (!res.ok()) continue;
      r.makespan_ns += res.value().LatencyNanos();
      r.rows_fnv = HashRows(r.rows_fnv, res.value().rows);
      r.snap.Merge(cluster.MetricsSnapshot());
    }
  }
  r.Finish(t0);
  return r;
}

// --- ldbc-ic: interactive complex mix. Sequential latency runs over a mix
// of IC numbers, then one concurrent batch so the multi-query execute path
// (shared memo table, interleaved scheduling) is exercised too.
WorkloadResult RunLdbcIc(bool bulking, const SnbDataset& data, int concurrent) {
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 2;
  cfg.traverser_bulking = bulking;

  const int kMix[] = {1, 2, 3, 5, 6, 9};
  WorkloadResult r;
  auto t0 = std::chrono::steady_clock::now();
  for (int number : kMix) {
    SnbParamGen gen(data, 100 + number);
    SnbParams p = gen.Next();
    auto plan = BuildInteractiveComplex(number, data, p);
    if (!plan.ok()) continue;
    SimCluster cluster(cfg, data.graph);
    auto res = cluster.Run(plan.TakeValue());
    if (!res.ok()) continue;
    r.makespan_ns += res.value().LatencyNanos();
    r.rows_fnv = HashRows(r.rows_fnv, res.value().rows);
    r.snap.Merge(cluster.MetricsSnapshot());
  }

  SimCluster cluster(cfg, data.graph);
  SnbParamGen gen(data, 500);
  std::vector<uint64_t> qids;
  for (int i = 0; i < concurrent; ++i) {
    SnbParams p = gen.Next();
    auto plan = BuildInteractiveComplex(kMix[i % 6], data, p);
    if (!plan.ok()) continue;
    qids.push_back(cluster.Submit(plan.TakeValue(), 0));
  }
  if (cluster.RunToCompletion().ok()) {
    r.makespan_ns += cluster.quiescent_time();
    for (uint64_t q : qids) r.rows_fnv = HashRows(r.rows_fnv, cluster.result(q).rows);
    r.snap.Merge(cluster.MetricsSnapshot());
  }
  r.Finish(t0);
  return r;
}

struct Suite {
  const char* name;
  WorkloadResult on;
  WorkloadResult off;
};

void PrintSuite(const Suite& s) {
  std::printf("%-9s %-11s | %10.1f %12lu %14.0f | makespan %14lu ns  rows %016lx\n",
              s.name, "bulking on", s.on.wall_ms, (unsigned long)s.on.tasks,
              s.on.tasks_per_sec, (unsigned long)s.on.makespan_ns,
              (unsigned long)s.on.rows_fnv);
  std::printf("%-9s %-11s | %10.1f %12lu %14.0f | makespan %14lu ns  rows %016lx\n",
              s.name, "bulking off", s.off.wall_ms, (unsigned long)s.off.tasks,
              s.off.tasks_per_sec, (unsigned long)s.off.makespan_ns,
              (unsigned long)s.off.rows_fnv);
}

void JsonWorkload(std::ofstream& json, const Suite& s, bool last) {
  json << "    {\n"
       << "      \"name\": \"" << s.name << "\",\n"
       << "      \"wall_ms\": " << s.on.wall_ms << ",\n"
       << "      \"tasks\": " << s.on.tasks << ",\n"
       << "      \"tasks_per_sec\": " << s.on.tasks_per_sec << ",\n"
       << "      \"makespan_ns\": " << s.on.makespan_ns << ",\n"
       << "      \"rows_fnv\": \"" << std::hex << s.on.rows_fnv << std::dec << "\",\n"
       << "      \"metrics_fnv\": \"" << std::hex << s.on.metrics_fnv << std::dec
       << "\",\n"
       << "      \"wall_ms_bulking_off\": " << s.off.wall_ms << ",\n"
       << "      \"tasks_bulking_off\": " << s.off.tasks << ",\n"
       << "      \"tasks_per_sec_bulking_off\": " << s.off.tasks_per_sec << ",\n"
       << "      \"makespan_ns_bulking_off\": " << s.off.makespan_ns << ",\n"
       << "      \"rows_fnv_bulking_off\": \"" << std::hex << s.off.rows_fnv
       << std::dec << "\",\n"
       << "      \"metrics_fnv_bulking_off\": \"" << std::hex << s.off.metrics_fnv
       << std::dec << "\"\n"
       << "    }" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int trials = static_cast<int>(ArgDouble(argc, argv, "--trials", 3));
  uint64_t persons =
      static_cast<uint64_t>(ArgDouble(argc, argv, "--persons", 800));
  int concurrent = static_cast<int>(ArgDouble(argc, argv, "--concurrent", 12));
  PrintHeader("Wall-clock: simulator throughput, multi-workload suite");

  // Warm-up pass so graph generation / allocator state doesn't skew the
  // first timed run.
  RunTopk(true, scale * 0.25, 1);

  std::vector<Suite> suites;
  suites.push_back({"topk", RunTopk(true, scale, trials),
                    RunTopk(false, scale, trials)});
  suites.push_back({"pathcount", RunPathCount(true, scale, trials),
                    RunPathCount(false, scale, trials)});
  {
    auto data = GenerateSnb(SnbConfig::Tiny(persons), 16).TakeValue();
    suites.push_back({"ldbc-ic", RunLdbcIc(true, *data, concurrent),
                      RunLdbcIc(false, *data, concurrent)});
  }

  std::printf("%-9s %-11s | %10s %12s %14s |\n", "workload", "mode", "wall ms",
              "tasks", "tasks/sec");
  bool rows_equal = true;
  for (const Suite& s : suites) {
    PrintSuite(s);
    if (s.on.rows_fnv != s.off.rows_fnv) {
      std::printf("FAIL: %s rows differ between bulking on and off\n", s.name);
      rows_equal = false;
    }
  }

  // Fixed-point with explicit precision: the JSON is a diffable perf
  // trajectory, and default ostream precision turns big tasks/s values into
  // lossy scientific notation ("1.6543e+06").
  std::ofstream json("BENCH_wallclock.json");
  json << std::fixed << std::setprecision(3);
  const Suite& topk = suites[0];
  json << "{\n"
       << "  \"wall_ms\": " << topk.on.wall_ms << ",\n"
       << "  \"tasks_per_sec\": " << topk.on.tasks_per_sec << ",\n"
       << "  \"tasks\": " << topk.on.tasks << ",\n"
       << "  \"wall_ms_bulking_off\": " << topk.off.wall_ms << ",\n"
       << "  \"tasks_per_sec_bulking_off\": " << topk.off.tasks_per_sec << ",\n"
       << "  \"tasks_bulking_off\": " << topk.off.tasks << ",\n"
       << "  \"workloads\": [\n";
  for (size_t i = 0; i < suites.size(); ++i) {
    JsonWorkload(json, suites[i], i + 1 == suites.size());
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_wallclock.json\n");

  if (!rows_equal) return 1;
  return 0;
}
