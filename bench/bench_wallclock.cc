// Real wall-clock throughput of the simulator itself on a fixed mixed
// k-hop workload, with traverser bulking on (default) and off. Unlike the
// figure benches this measures host time, not virtual time: bulking must
// not make the simulator slower even though it adds merge work on the hot
// path. Writes BENCH_wallclock.json next to the working directory.
//
// Flags: --scale S (default 0.25), --trials N (default 3)

#include <chrono>
#include <fstream>

#include "bench/bench_common.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

struct WallResult {
  double wall_ms = 0.0;
  uint64_t tasks = 0;
  double tasks_per_sec = 0.0;
};

WallResult RunWorkload(bool bulking, double scale, int trials) {
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 2;
  cfg.traverser_bulking = bulking;
  BenchGraph bg = MakeBenchGraph("lj-sim", scale, cfg.num_partitions());

  WallResult r;
  auto t0 = std::chrono::steady_clock::now();
  for (int k : {2, 3, 4}) {
    obs::MetricsSnapshot snap;
    AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials, 31, nullptr, &snap);
    r.tasks += snap.tasks_executed;
  }
  auto t1 = std::chrono::steady_clock::now();
  r.wall_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(t1 - t0)
          .count();
  r.tasks_per_sec = r.wall_ms <= 0.0
                        ? 0.0
                        : static_cast<double>(r.tasks) / (r.wall_ms / 1000.0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int trials = static_cast<int>(ArgDouble(argc, argv, "--trials", 3));
  PrintHeader("Wall-clock: simulator throughput, bulking on vs off");

  // Warm-up pass so graph generation / allocator state doesn't skew the
  // first timed run.
  RunWorkload(true, scale * 0.25, 1);

  WallResult on = RunWorkload(true, scale, trials);
  WallResult off = RunWorkload(false, scale, trials);

  std::printf("%-12s | %10s %12s %14s\n", "mode", "wall ms", "tasks",
              "tasks/sec");
  std::printf("%-12s | %10.1f %12lu %14.0f\n", "bulking on", on.wall_ms,
              (unsigned long)on.tasks, on.tasks_per_sec);
  std::printf("%-12s | %10.1f %12lu %14.0f\n", "bulking off", off.wall_ms,
              (unsigned long)off.tasks, off.tasks_per_sec);
  std::printf("\nwall-clock ratio on/off: %.2f (<= 1.0 means bulking is free "
              "or faster in host time)\n",
              off.wall_ms <= 0.0 ? 0.0 : on.wall_ms / off.wall_ms);

  // Primary keys report the default configuration (bulking on); *_off keys
  // carry the ablation baseline for regression tracking.
  std::ofstream json("BENCH_wallclock.json");
  json << "{\n"
       << "  \"wall_ms\": " << on.wall_ms << ",\n"
       << "  \"tasks_per_sec\": " << on.tasks_per_sec << ",\n"
       << "  \"tasks\": " << on.tasks << ",\n"
       << "  \"wall_ms_bulking_off\": " << off.wall_ms << ",\n"
       << "  \"tasks_per_sec_bulking_off\": " << off.tasks_per_sec << ",\n"
       << "  \"tasks_bulking_off\": " << off.tasks << "\n"
       << "}\n";
  std::printf("wrote BENCH_wallclock.json\n");
  return 0;
}
