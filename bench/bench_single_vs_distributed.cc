// §V-A3 (text experiment): single-node vs distributed execution.
// The single-node configuration (the GraphScope stand-in, DESIGN.md §1)
// eliminates all cross-node communication, so on a dataset that fits in one
// node's memory it wins on latency while the distributed cluster wins on
// throughput. On the larger dataset exceeding one node's simulated RAM the
// single node falls off a cliff (swap thrashing).
//
// Flags: --persons N (default 1200)

#include "bench/bench_common.h"
#include "ldbc/driver.h"
#include "ldbc/snb_queries.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

struct Summary {
  double avg_latency_us = 0;
  double throughput_qps = 0;
};

Summary RunSuite(const SnbDataset& data, const ClusterConfig& cfg, int concurrent) {
  Summary out;
  LatencyRecorder lat;
  for (int number = 1; number <= kNumInteractiveComplex; ++number) {
    SnbParamGen gen(data, 40 + number);
    SnbParams p = gen.Next();
    auto plan = BuildInteractiveComplex(number, data, p);
    if (!plan.ok()) continue;
    SimCluster cluster(cfg, data.graph);
    auto res = cluster.Run(plan.TakeValue());
    if (res.ok()) lat.Record(res.value().LatencyMicros());
  }
  out.avg_latency_us = lat.Avg();

  SimCluster cluster(cfg, data.graph);
  SnbParamGen gen(data, 900);
  int submitted = 0;
  for (int i = 0; i < concurrent; ++i) {
    SnbParams p = gen.Next();
    auto plan = BuildInteractiveComplex(1 + i % kNumInteractiveComplex, data, p);
    if (!plan.ok()) continue;
    cluster.Submit(plan.TakeValue(), 0);
    ++submitted;
  }
  if (cluster.RunToCompletion().ok() && cluster.quiescent_time() > 0) {
    out.throughput_qps =
        submitted * 1e9 / static_cast<double>(cluster.quiescent_time());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  uint64_t persons =
      static_cast<uint64_t>(ArgDouble(argc, argv, "--persons", 1200));
  PrintHeader("§V-A3: single-node (GraphScope stand-in) vs distributed");

  // Identical per-node hardware (4 workers/node): the single-node setup is
  // one machine, the distributed setup is 8 of them.
  ClusterConfig dist;
  dist.num_nodes = 8;
  dist.workers_per_node = 4;
  ClusterConfig single;
  single.num_nodes = 1;
  single.workers_per_node = 4;
  // GraphScope stand-in: hand-optimized per-query C++ plugins (see
  // runtime/config.h on the 3.5x calibration from the paper's numbers).
  single.cpu_speedup = 3.5;

  auto small_dist = GenerateSnb(SnbConfig::Tiny(persons), dist.num_partitions()).TakeValue();
  auto small_single = GenerateSnb(SnbConfig::Tiny(persons), single.num_partitions()).TakeValue();
  Summary dist_small = RunSuite(*small_dist, dist, 32);
  Summary single_small = RunSuite(*small_single, single, 32);

  std::printf("\nsf300-sim (fits in one node's memory):\n");
  std::printf("  %-22s avg IC latency %8.0f us, throughput %7.0f q/s\n",
              "single-node:", single_small.avg_latency_us,
              single_small.throughput_qps);
  std::printf("  %-22s avg IC latency %8.0f us, throughput %7.0f q/s\n",
              "distributed (8 nodes):", dist_small.avg_latency_us,
              dist_small.throughput_qps);
  std::printf("  single-node latency is %.1f%% lower; distributed throughput is %.2fx\n",
              100.0 * (1.0 - single_small.avg_latency_us /
                                 std::max(1.0, dist_small.avg_latency_us)),
              dist_small.throughput_qps / std::max(1e-9, single_small.throughput_qps));

  // Large dataset: cap the single node's memory below the dataset size.
  auto big_dist =
      GenerateSnb(SnbConfig::Tiny(persons * 3), dist.num_partitions()).TakeValue();
  auto big_single =
      GenerateSnb(SnbConfig::Tiny(persons * 3), single.num_partitions()).TakeValue();
  ClusterConfig single_capped = single;
  single_capped.memory_cap_bytes = big_single->graph->stats().raw_bytes / 2;
  Summary dist_big = RunSuite(*big_dist, dist, 32);
  Summary single_big = RunSuite(*big_single, single_capped, 32);

  std::printf("\nsf1000-sim (exceeds one node's memory -> swap thrashing):\n");
  std::printf("  %-22s avg IC latency %8.0f us (%.1fx the distributed latency)\n",
              "single-node:", single_big.avg_latency_us,
              single_big.avg_latency_us / std::max(1.0, dist_big.avg_latency_us));
  std::printf("  %-22s avg IC latency %8.0f us\n",
              "distributed (8 nodes):", dist_big.avg_latency_us);
  std::printf(
      "\nExpected shape (paper): single-node ~58%% lower latency on the small\n"
      "graph (no cross-node communication), distributed ~2.2x throughput;\n"
      "on the big graph the single node collapses (the paper's GraphScope\n"
      "missed deadlines on 9 of 14 ICs).\n");
  return 0;
}
