// Table I: measured characteristics of the three graph-workload classes on
// the SNB dataset — transactional (short reads), interactive complex, and
// offline analytics — quantifying accessed-data fraction, latency and
// achievable per-cluster throughput.
//
// Flags: --persons N (default 1000)

#include "bench/bench_common.h"
#include "ldbc/driver.h"
#include "ldbc/snb_queries.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

struct Profile {
  double accessed_pct = 0;  // tasks executed / total vertices+edges
  double avg_latency_us = 0;
  double qps = 0;
};

Profile Measure(const SnbDataset& data, const std::vector<PlanPtr>& plans) {
  Profile prof;
  double denom = static_cast<double>(data.graph->stats().num_vertices +
                                     data.graph->stats().num_edges);
  LatencyRecorder lat;
  uint64_t tasks = 0;
  SimTime total_time = 0;
  for (const PlanPtr& plan : plans) {
    ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.workers_per_node = 4;
    SimCluster cluster(cfg, data.graph);
    auto res = cluster.Run(plan);
    if (!res.ok()) continue;
    lat.Record(res.value().LatencyMicros());
    tasks += cluster.TotalTasksExecuted() +
             cluster.ChargedCount(CostKind::kPerEdge) +
             cluster.ChargedCount(CostKind::kPropAccess);
    total_time += cluster.quiescent_time();
  }
  prof.avg_latency_us = lat.Avg();
  prof.accessed_pct = plans.empty() ? 0 : 100.0 * tasks / plans.size() / denom;
  // Throughput proxy: queries per second if issued back-to-back on the
  // cluster (16 workers).
  prof.qps = total_time == 0 ? 0 : plans.size() * 1e9 / total_time;
  return prof;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  uint64_t persons =
      static_cast<uint64_t>(ArgDouble(argc, argv, "--persons", 1000));
  PrintHeader("Table I: measured characteristics per workload class");
  auto data = GenerateSnb(SnbConfig::Tiny(persons), 16).TakeValue();
  SnbParamGen gen(*data, 5);

  // Transactional: IS short reads.
  std::vector<PlanPtr> txn_plans;
  for (int i = 1; i <= kNumInteractiveShort; ++i) {
    SnbParams p = gen.Next();
    auto plan = BuildInteractiveShort(i, *data, p);
    if (plan.ok()) txn_plans.push_back(plan.TakeValue());
  }
  // Interactive complex: IC queries.
  std::vector<PlanPtr> ic_plans;
  for (int i = 1; i <= kNumInteractiveComplex; ++i) {
    SnbParams p = gen.Next();
    auto plan = BuildInteractiveComplex(i, *data, p);
    if (plan.ok()) ic_plans.push_back(plan.TakeValue());
  }
  // Offline analytics: one whole-graph scan pass (PageRank-style iteration
  // over every entity's adjacency: persons' social/likes edges, messages'
  // tag and reply edges).
  std::vector<PlanPtr> olap_plans;
  {
    std::vector<VertexId> all_persons, all_posts, all_comments;
    for (uint64_t i = 0; i < data->config.num_persons; ++i) {
      all_persons.push_back(data->PersonId(i));
    }
    for (uint64_t i = 0; i < data->num_posts; ++i) {
      all_posts.push_back(data->PostId(i));
    }
    for (uint64_t i = 0; i < data->num_comments; ++i) {
      all_comments.push_back(data->CommentId(i));
    }
    auto add = [&](Traversal&& t) {
      auto plan = std::move(t).Build();
      if (plan.ok()) olap_plans.push_back(plan.TakeValue());
    };
    Traversal t1(data->graph);
    t1.V(all_persons).Out("knows").Count();
    add(std::move(t1));
    Traversal t2(data->graph);
    t2.V(all_persons).Out("likes").Count();
    add(std::move(t2));
    Traversal t3(data->graph);
    t3.V(all_persons).In("hasCreator").Count();
    add(std::move(t3));
    Traversal t4(data->graph);
    t4.V(all_posts).Out("hasTag").Count();
    add(std::move(t4));
    Traversal t5(data->graph);
    t5.V(all_comments).Out("replyOf").Count();
    add(std::move(t5));
  }

  Profile txn = Measure(*data, txn_plans);
  Profile ic = Measure(*data, ic_plans);
  Profile olap = Measure(*data, olap_plans);

  std::printf("%-28s %18s %18s %18s\n", "", "Transactional(IS)",
              "Interactive(IC)", "Offline(OLAP)");
  std::printf("%-28s %17.3f%% %17.2f%% %17.1f%%\n", "accessed graph data",
              txn.accessed_pct, ic.accessed_pct, olap.accessed_pct);
  std::printf("%-28s %15.0f us %15.0f us %15.0f us\n", "avg response time",
              txn.avg_latency_us, ic.avg_latency_us, olap.avg_latency_us);
  std::printf("%-28s %14.0f q/s %14.0f q/s %14.1f q/s\n",
              "sequential throughput", txn.qps, ic.qps, olap.qps);
  std::printf(
      "\nExpected shape (paper Table I): transactional <0.01%% data, us-ms\n"
      "latency, very high throughput; interactive 0.1-10%%, ms latency;\n"
      "offline ~100%% of the data, lowest throughput.\n");
  return 0;
}
