// Ablation: the PowerSwitch-style hybrid engine chooser (the hybrid
// direction the paper's related-work section points at). For k-hop queries
// of increasing size at low parallelism, the hybrid choice should track the
// measured winner between the async PSTM engine and BSP, approximating
// min(async, bsp) without running both.
//
// Flags: --scale S (default 0.25), --trials N (default 3)

#include "bench/bench_common.h"
#include "runtime/hybrid.h"

using namespace graphdance;
using namespace graphdance::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int trials = static_cast<int>(ArgDouble(argc, argv, "--trials", 3));
  PrintHeader("Ablation: hybrid sync/async selection (PowerSwitch-style)");

  // Low parallelism: the regime where the Fig. 9 crossover appears.
  ClusterConfig cfg;
  cfg.num_nodes = 1;
  cfg.workers_per_node = 2;

  std::printf("%-10s %-4s | %11s %11s %11s | %-7s %s\n", "graph", "k",
              "async(us)", "bsp(us)", "hybrid(us)", "chose", "regret vs best");
  for (const char* preset : {"lj-sim", "fs-sim"}) {
    double s = preset[0] == 'f' ? scale * 0.5 : scale;
    BenchGraph bg = MakeBenchGraph(preset, s, cfg.num_partitions());
    for (int k : {1, 2, 3, 4}) {
      ClusterConfig async_cfg = cfg;
      double async_us = AvgKHopLatency(async_cfg, bg.graph, bg.weight, k, trials);
      ClusterConfig bsp_cfg = cfg;
      bsp_cfg.engine = EngineKind::kBsp;
      double bsp_us = AvgKHopLatency(bsp_cfg, bg.graph, bg.weight, k, trials);

      // The hybrid runs whichever engine the chooser picks per query.
      Rng rng(31);
      LatencyRecorder hybrid_lat;
      EngineKind last_choice = EngineKind::kAsync;
      for (int t = 0; t < trials; ++t) {
        VertexId start = PickActiveStart(bg.graph, &rng);
        auto plan = KHopPlan(bg.graph, bg.weight, start, k);
        HybridChoice choice =
            ChooseEngine(*plan, bg.graph->stats(), cfg.total_workers());
        last_choice = choice.engine;
        ClusterConfig run_cfg = cfg;
        run_cfg.engine = choice.engine;
        SimCluster cluster(run_cfg, bg.graph);
        auto res = cluster.Run(plan);
        if (res.ok()) hybrid_lat.Record(res.value().LatencyMicros());
      }
      double hybrid_us = hybrid_lat.Avg();
      double best = std::min(async_us, bsp_us);
      std::printf("%-10s %-4d | %11.0f %11.0f %11.0f | %-7s %+.1f%%\n", preset,
                  k, async_us, bsp_us, hybrid_us,
                  last_choice == EngineKind::kBsp ? "bsp" : "async",
                  100.0 * (hybrid_us / best - 1.0));
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape: the chooser routes small/medium queries to async and\n"
      "whole-graph traversals to BSP, keeping regret vs the per-query best\n"
      "engine near zero at this parallelism level.\n");
  return 0;
}
