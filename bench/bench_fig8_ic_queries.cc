// Figure 8: latency and throughput of each LDBC SNB interactive complex
// query (IC1-IC14) individually, on the sf300-sim and sf1000-sim datasets,
// for GraphDance vs the BSP baseline vs the non-partitioned graph model.
// Latency: sequential submission. Throughput: a batch of concurrent queries
// divided by the virtual makespan.
//
// Flags: --persons N (default 1200; sf1000-sim uses 3x), --concurrent C
//        (default 24), --big 1 to include sf1000-sim

#include "bench/bench_common.h"
#include "ldbc/driver.h"
#include "ldbc/snb_queries.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

struct Cell {
  double latency_us = 0;
  double throughput_qps = 0;
};

Cell RunIc(const SnbDataset& data, int number, EngineKind engine, int concurrent) {
  ClusterConfig cfg;
  cfg.num_nodes = 8;
  cfg.workers_per_node = 2;
  cfg.engine = engine;

  Cell cell;
  // Latency: sequential runs over several parameters.
  LatencyRecorder lat;
  for (int trial = 0; trial < 3; ++trial) {
    SnbParamGen gen(data, 100 + trial);
    SnbParams p = gen.Next();
    auto plan = BuildInteractiveComplex(number, data, p);
    if (!plan.ok()) continue;
    SimCluster cluster(cfg, data.graph);
    auto res = cluster.Run(plan.TakeValue());
    if (res.ok()) lat.Record(res.value().LatencyMicros());
  }
  cell.latency_us = lat.Avg();

  // Throughput: `concurrent` queries submitted at t=0.
  SimCluster cluster(cfg, data.graph);
  SnbParamGen gen(data, 500);
  int submitted = 0;
  for (int i = 0; i < concurrent; ++i) {
    SnbParams p = gen.Next();
    auto plan = BuildInteractiveComplex(number, data, p);
    if (!plan.ok()) continue;
    cluster.Submit(plan.TakeValue(), 0);
    ++submitted;
  }
  if (cluster.RunToCompletion().ok() && cluster.quiescent_time() > 0) {
    cell.throughput_qps =
        submitted * 1e9 / static_cast<double>(cluster.quiescent_time());
  }
  return cell;
}

void RunDataset(const char* name, const SnbDataset& data, int concurrent) {
  std::printf("\n--- %s: %lu persons, %lu edges ---\n", name,
              (unsigned long)data.config.num_persons,
              (unsigned long)data.graph->stats().num_edges);
  std::printf("%-5s | %12s %12s %12s | %11s %11s %11s\n", "query",
              "gdance(us)", "bsp(us)", "shared(us)", "gd(q/s)", "bsp(q/s)",
              "shared(q/s)");
  double sum_ratio_bsp = 0, sum_tp_ratio = 0;
  int cells = 0;
  for (int number = 1; number <= kNumInteractiveComplex; ++number) {
    Cell gd = RunIc(data, number, EngineKind::kAsync, concurrent);
    Cell bsp = RunIc(data, number, EngineKind::kBsp, concurrent);
    Cell shared = RunIc(data, number, EngineKind::kShared, concurrent);
    std::printf("IC%-3d | %12.0f %12.0f %12.0f | %11.0f %11.0f %11.0f\n", number,
                gd.latency_us, bsp.latency_us, shared.latency_us,
                gd.throughput_qps, bsp.throughput_qps, shared.throughput_qps);
    std::fflush(stdout);
    if (gd.latency_us > 0 && bsp.latency_us > 0) {
      sum_ratio_bsp += 1.0 - gd.latency_us / bsp.latency_us;
      sum_tp_ratio += gd.throughput_qps / std::max(1e-9, bsp.throughput_qps);
      ++cells;
    }
  }
  if (cells > 0) {
    std::printf("avg: GraphDance latency %.1f%% lower than BSP; throughput %.1fx\n",
                100.0 * sum_ratio_bsp / cells, sum_tp_ratio / cells);
  }
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  uint64_t persons =
      static_cast<uint64_t>(ArgDouble(argc, argv, "--persons", 1200));
  int concurrent = static_cast<int>(ArgDouble(argc, argv, "--concurrent", 24));
  bool big = ArgDouble(argc, argv, "--big", 1) > 0;
  PrintHeader("Figure 8: individual IC query latency & throughput");

  auto sf300 = GenerateSnb(SnbConfig::Tiny(persons), 16).TakeValue();
  RunDataset("ldbc-sf300-sim", *sf300, concurrent);
  if (big) {
    auto sf1000 = GenerateSnb(SnbConfig::Tiny(persons * 3), 16).TakeValue();
    RunDataset("ldbc-sf1000-sim", *sf1000, concurrent);
  }
  std::printf(
      "\nExpected shape (paper): GraphDance ~89%% / ~90%% lower latency than\n"
      "the BSP baseline on sf300/sf1000 and 35-43x higher throughput; the\n"
      "non-partitioned model sits in between (~46%% higher latency than\n"
      "GraphDance, ~3.3x lower throughput).\n");
  return 0;
}
