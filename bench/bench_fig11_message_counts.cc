// Figure 11: number of progress-tracking messages vs other messages, with
// and without weight coalescing, on the k-hop workload.
//
// Flags: --scale S (default 0.25), --trials N (default 2)

#include "bench/bench_common.h"

using namespace graphdance;
using namespace graphdance::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int trials = static_cast<int>(ArgDouble(argc, argv, "--trials", 2));
  PrintHeader("Figure 11: progress-tracking vs other messages (per query avg)");

  std::printf("%-10s %-4s | %13s %13s | %13s %13s | %9s\n", "graph", "k",
              "progress+WC", "other+WC", "progress-WC", "other-WC", "reduction");
  for (const char* preset : {"lj-sim", "fs-sim"}) {
    double s = preset[0] == 'f' ? scale * 0.5 : scale;
    for (int k : {2, 3, 4}) {
      ClusterConfig cfg;
      cfg.num_nodes = 8;
      cfg.workers_per_node = 2;
      BenchGraph bg = MakeBenchGraph(preset, s, cfg.num_partitions());

      // Message counts come from the unified metrics registry (the NetStats
      // inside each cluster's MetricsSnapshot()), not hand-rolled counters.
      obs::MetricsSnapshot with_wc, without_wc;
      cfg.weight_coalescing = true;
      AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials, 31, nullptr, &with_wc);
      cfg.weight_coalescing = false;
      AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials, 31, nullptr, &without_wc);

      double reduction =
          without_wc.net.progress_messages() == 0
              ? 0.0
              : 100.0 * (1.0 - static_cast<double>(with_wc.net.progress_messages()) /
                                   static_cast<double>(without_wc.net.progress_messages()));
      std::printf("%-10s %-4d | %13lu %13lu | %13lu %13lu | %8.1f%%\n", preset, k,
                  (unsigned long)(with_wc.net.progress_messages() / trials),
                  (unsigned long)(with_wc.net.other_messages() / trials),
                  (unsigned long)(without_wc.net.progress_messages() / trials),
                  (unsigned long)(without_wc.net.other_messages() / trials), reduction);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape (paper): without WC the progress-message count is\n"
      "comparable to all other messages combined; WC cuts it by 91-99%%.\n");
  return 0;
}
