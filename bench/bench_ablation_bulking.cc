// Ablation: traverser bulking on vs off on the k-hop workload. Reports
// traverser-batch messages, wire bytes, executed tasks, and virtual
// makespan per mode — the bulked runs must produce the identical result
// rows while sending a fraction of the traverser traffic.
//
// Flags: --scale S (default 0.25), --trials N (default 2)

#include "bench/bench_common.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

uint64_t TraverserBatchMessages(const obs::MetricsSnapshot& snap) {
  return snap.net.messages_by_kind[static_cast<int>(MessageKind::kTraverserBatch)];
}

/// Path counting: k hops WITHOUT dedup, so every distinct path survives and
/// the count is the number of k-step walks from `start`. Multiplicity is
/// semantically meaningful here — dedup would change the answer — which
/// makes this the workload where bulking does all the work (Rodriguez'15:
/// bulking is dedup for traversers whose count you must keep).
std::shared_ptr<const Plan> PathCountPlan(
    const std::shared_ptr<PartitionedGraph>& graph, VertexId start, int k) {
  return Traversal(graph)
      .V({start})
      .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/false)
      .Count()
      .Build()
      .TakeValue();
}

struct ModeStats {
  obs::MetricsSnapshot snap;
  double avg_lat_us = 0.0;
};

ModeStats RunPathCount(const ClusterConfig& base, const BenchGraph& bg, int k,
                       int trials, bool bulking, bool* rows_equal,
                       std::vector<Row>* rows_out) {
  ClusterConfig cfg = base;
  cfg.traverser_bulking = bulking;
  Rng rng(31);
  ModeStats ms;
  double lat_sum = 0.0;
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    VertexId start = PickActiveStart(bg.graph, &rng);
    SimCluster cluster(cfg, bg.graph);
    auto res = cluster.Run(PathCountPlan(bg.graph, start, k));
    if (!res.ok()) continue;
    lat_sum += res.value().LatencyMicros();
    ok++;
    ms.snap.Merge(cluster.MetricsSnapshot());
    if (rows_out != nullptr) {
      if (t < static_cast<int>(rows_out->size())) {
        if ((*rows_out)[t] != res.value().rows[0]) *rows_equal = false;
      } else {
        rows_out->push_back(res.value().rows[0]);
      }
    }
  }
  ms.avg_lat_us = ok == 0 ? 0.0 : lat_sum / ok;
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int trials = static_cast<int>(ArgDouble(argc, argv, "--trials", 2));
  PrintHeader("Ablation: traverser bulking (per query avg)");

  std::printf("%-10s %-4s | %11s %11s %6s | %12s %12s %6s | %10s %10s\n",
              "graph", "k", "TBmsg+blk", "TBmsg-blk", "x", "bytes+blk",
              "bytes-blk", "x", "lat+blk us", "lat-blk us");
  bool all_rows_equal = true;
  for (const char* preset : {"lj-sim", "fs-sim"}) {
    double s = preset[0] == 'f' ? scale * 0.5 : scale;
    for (int k : {2, 3, 4}) {
      ClusterConfig cfg;
      cfg.num_nodes = 8;
      cfg.workers_per_node = 2;
      BenchGraph bg = MakeBenchGraph(preset, s, cfg.num_partitions());

      obs::MetricsSnapshot with_blk, without_blk;
      cfg.traverser_bulking = true;
      double lat_on =
          AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials, 31, nullptr, &with_blk);
      cfg.traverser_bulking = false;
      double lat_off = AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials, 31,
                                      nullptr, &without_blk);

      // Equivalence spot-check: same seed, same start, both modes must emit
      // the identical top-10 rows.
      {
        Rng rng(31);
        VertexId start = PickActiveStart(bg.graph, &rng);
        auto plan = KHopPlan(bg.graph, bg.weight, start, k);
        ClusterConfig on_cfg = cfg;
        on_cfg.traverser_bulking = true;
        SimCluster on_cluster(on_cfg, bg.graph);
        SimCluster off_cluster(cfg, bg.graph);
        auto ron = on_cluster.Run(plan);
        auto roff = off_cluster.Run(plan);
        if (!ron.ok() || !roff.ok() || ron.value().rows != roff.value().rows) {
          all_rows_equal = false;
        }
      }

      double msg_x = TraverserBatchMessages(with_blk) == 0
                         ? 0.0
                         : static_cast<double>(TraverserBatchMessages(without_blk)) /
                               static_cast<double>(TraverserBatchMessages(with_blk));
      double byte_x = with_blk.net.bytes == 0
                         ? 0.0
                         : static_cast<double>(without_blk.net.bytes) /
                               static_cast<double>(with_blk.net.bytes);
      std::printf(
          "%-10s %-4d | %11lu %11lu %5.1fx | %12lu %12lu %5.1fx | %10.1f %10.1f\n",
          preset, k, (unsigned long)(TraverserBatchMessages(with_blk) / trials),
          (unsigned long)(TraverserBatchMessages(without_blk) / trials), msg_x,
          (unsigned long)(with_blk.net.bytes / trials),
          (unsigned long)(without_blk.net.bytes / trials), byte_x, lat_on, lat_off);
      std::fflush(stdout);
    }
  }
  // Part 2: path counting (multiplicity-preserving, no dedup). Every
  // distinct walk must be counted, so the memo can't prune anything and the
  // frontier is pure duplicate mass — the workload bulking exists for.
  std::printf("\n%-10s %-4s | %11s %11s %6s | %12s %12s %6s | %10s %10s\n",
              "pathcount", "k", "TBmsg+blk", "TBmsg-blk", "x", "bytes+blk",
              "bytes-blk", "x", "lat+blk us", "lat-blk us");
  double worst_msg_x = 1e30;
  {
    // Uniform graph: the walk count is ~degree^k, so the unbulked baseline
    // stays tractable (a power-law graph's walk count through hubs is not).
    ClusterConfig cfg;
    cfg.num_nodes = 8;
    cfg.workers_per_node = 2;
    BenchGraph bg;
    bg.schema = std::make_shared<Schema>();
    bg.graph = GenerateUniformGraph(1024, 24576, 42, bg.schema,
                                    cfg.num_partitions())
                   .TakeValue();
    for (int k : {3, 4}) {

      bool rows_equal = true;
      std::vector<Row> rows;
      ModeStats on = RunPathCount(cfg, bg, k, trials, true, &rows_equal, &rows);
      ModeStats off = RunPathCount(cfg, bg, k, trials, false, &rows_equal, &rows);
      if (!rows_equal) all_rows_equal = false;

      double msg_x = TraverserBatchMessages(on.snap) == 0
                         ? 0.0
                         : static_cast<double>(TraverserBatchMessages(off.snap)) /
                               static_cast<double>(TraverserBatchMessages(on.snap));
      double byte_x = on.snap.net.bytes == 0
                         ? 0.0
                         : static_cast<double>(off.snap.net.bytes) /
                               static_cast<double>(on.snap.net.bytes);
      // The acceptance gate reads the k=4 row: walk-per-site density at k=3
      // (~13 walks over 1024 vertices) is below what the async co-residency
      // window can exploit; k=4 (~320 walks/site) is the regime the
      // optimization targets.
      if (k == 4 && msg_x < worst_msg_x) worst_msg_x = msg_x;
      std::printf(
          "%-10s %-4d | %11lu %11lu %5.1fx | %12lu %12lu %5.1fx | %10.1f %10.1f\n",
          "uniform-24", k,
          (unsigned long)(TraverserBatchMessages(on.snap) / trials),
          (unsigned long)(TraverserBatchMessages(off.snap) / trials), msg_x,
          (unsigned long)(on.snap.net.bytes / trials),
          (unsigned long)(off.snap.net.bytes / trials), byte_x, on.avg_lat_us,
          off.avg_lat_us);
      std::fflush(stdout);
    }
  }

  std::printf(
      "\nrows identical in both modes: %s\n"
      "worst path-count message reduction: %.1fx (acceptance floor: 2.0x)\n"
      "Expected shape: bulking merges equivalent traversers at the send\n"
      "buffer and task queue. On the dedup'd top-k workload it trims the\n"
      "residual same-hop duplicates; on path counting (where dedup is\n"
      "semantically impossible) it collapses the frontier by >=2x in\n"
      "traverser-batch messages/bytes and shrinks virtual makespan, with\n"
      "identical result rows in every mode.\n",
      all_rows_equal ? "YES" : "NO (BUG)", worst_msg_x);
  return all_rows_equal && worst_msg_x >= 2.0 ? 0 : 1;
}
