// Distributed write transactions: commit throughput and abort rate vs
// contention (DESIGN.md §16). The same LDBC SNB update-transaction stream is
// driven through the distributed two-round commit protocol at progressively
// hotter anchor windows (fewer hot persons = more write-write conflicts =
// more no-wait aborts and retries), each point verified by the
// serializability oracle: every read wave diffed against a single-worker
// serial replay of the committed schedule. A second table runs the
// crash-chaos phases (crash-during-{prepare,commit,apply}) at mid contention
// to price recovery.
//
// Gated exit (CI): zero oracle trips, zero row mismatches and zero
// partial-visibility rows at every point and every chaos cell; every chaos
// cell actually crashed (non-vacuity); conflict activity (aborts + retries)
// at the hottest window strictly exceeds the coolest (the sweep measured
// contention, not noise). Writes BENCH_txn.json.
//
// Flags: --updates N      update transactions per point  (default 64)
//        --seed R         workload seed                  (default 13)

#include <chrono>
#include <fstream>
#include <iomanip>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "check/txn_oracle.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

struct TxnPoint {
  uint32_t hot_persons = 0;
  std::string phase;               // "" = fault-free contention point
  uint64_t committed = 0;
  uint64_t aborted = 0;            // retries exhausted (legal under contention)
  uint64_t retried = 0;
  uint64_t waves = 0;
  uint64_t crashes = 0;
  uint64_t trips = 0;
  uint64_t mismatches = 0;
  uint64_t partial_rows = 0;
  double wall_ms = 0.0;
  double commits_per_sec = 0.0;    // committed / wall (protocol + oracle)
  double abort_rate = 0.0;         // aborted / (committed + aborted)
};

TxnPoint RunPoint(uint32_t hot_persons, const std::string& phase,
                  uint32_t num_updates, uint64_t seed) {
  TxnPoint pt;
  pt.hot_persons = hot_persons;
  pt.phase = phase;

  check::TxnScenario scenario =
      check::MakeTxnScenario(seed, num_updates, hot_persons);
  check::TxnDifferentialOptions opt;
  check::ReplaySpec spec;
  spec.mode = "async";
  spec.txn = true;
  spec.txn_phase = phase;
  spec.tiebreak_seed = seed;

  auto t0 = std::chrono::steady_clock::now();
  auto cell = check::RunTxnCell(scenario, spec, opt);
  auto t1 = std::chrono::steady_clock::now();
  if (!cell.ok()) {
    std::fprintf(stderr, "txn cell (hot=%u phase=%s) failed: %s\n",
                 hot_persons, phase.empty() ? "none" : phase.c_str(),
                 cell.status().ToString().c_str());
    std::exit(2);
  }
  const check::TxnCellReport& r = cell.value();
  pt.committed = r.committed;
  pt.aborted = r.finally_aborted;
  pt.retried = r.retried;
  pt.waves = r.waves;
  pt.crashes = r.crashes;
  pt.trips = r.base.trips;
  pt.mismatches = r.base.mismatches;
  pt.partial_rows = r.partial_visibility_rows;
  pt.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  pt.commits_per_sec =
      pt.wall_ms > 0 ? static_cast<double>(pt.committed) / (pt.wall_ms / 1e3)
                     : 0;
  const uint64_t decided = pt.committed + pt.aborted;
  pt.abort_rate =
      decided > 0 ? static_cast<double>(pt.aborted) / decided : 0;
  return pt;
}

void PrintPoint(const TxnPoint& p) {
  std::printf("%6u %8s | %9llu %8llu %8llu %7.3f %11.0f %7llu %6llu %6llu\n",
              p.hot_persons, p.phase.empty() ? "none" : p.phase.c_str(),
              (unsigned long long)p.committed, (unsigned long long)p.aborted,
              (unsigned long long)p.retried, p.abort_rate, p.commits_per_sec,
              (unsigned long long)p.waves, (unsigned long long)p.crashes,
              (unsigned long long)(p.trips + p.mismatches + p.partial_rows));
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  uint32_t num_updates =
      static_cast<uint32_t>(ArgDouble(argc, argv, "--updates", 64));
  uint64_t seed = static_cast<uint64_t>(ArgDouble(argc, argv, "--seed", 13));
  PrintHeader("Distributed txns: commit throughput / abort rate vs contention");

  std::printf("%6s %8s | %9s %8s %8s %7s %11s %7s %6s %6s\n", "hot", "phase",
              "committed", "aborted", "retried", "ab.rate", "commits/sec",
              "waves", "crash", "viol");

  // Contention sweep, fault-free: fewer hot anchors = hotter window.
  const uint32_t kHotWindows[] = {32, 16, 8, 4, 2};
  std::vector<TxnPoint> points;
  for (uint32_t hot : kHotWindows) {
    TxnPoint p = RunPoint(hot, "", num_updates, seed);
    PrintPoint(p);
    points.push_back(p);
  }

  // Chaos cells at mid contention: crash-during-{prepare,commit,apply}.
  const char* kPhases[] = {"prepare", "commit", "apply"};
  std::vector<TxnPoint> chaos;
  for (const char* phase : kPhases) {
    TxnPoint p = RunPoint(8, phase, num_updates, seed);
    PrintPoint(p);
    chaos.push_back(p);
  }

  std::ofstream json("BENCH_txn.json");
  json << std::fixed << std::setprecision(3);
  json << "{\n  \"updates\": " << num_updates << ",\n  \"points\": [\n";
  auto emit = [&](const std::vector<TxnPoint>& pts, bool more) {
    for (size_t i = 0; i < pts.size(); ++i) {
      const TxnPoint& p = pts[i];
      json << "    {\"hot_persons\": " << p.hot_persons << ", \"phase\": \""
           << p.phase << "\", \"committed\": " << p.committed
           << ", \"aborted\": " << p.aborted << ", \"retried\": " << p.retried
           << ", \"abort_rate\": " << p.abort_rate
           << ", \"commits_per_sec\": " << p.commits_per_sec
           << ", \"waves\": " << p.waves << ", \"crashes\": " << p.crashes
           << ", \"oracle_trips\": " << p.trips
           << ", \"mismatches\": " << p.mismatches
           << ", \"partial_visibility_rows\": " << p.partial_rows << "}"
           << (more || i + 1 < pts.size() ? "," : "") << "\n";
    }
  };
  emit(points, /*more=*/true);
  emit(chaos, /*more=*/false);
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_txn.json\n");

  // --- gated exit ---------------------------------------------------------
  int rc = 0;
  auto gate = [&](const std::vector<TxnPoint>& pts) {
    for (const TxnPoint& p : pts) {
      if (p.trips != 0 || p.mismatches != 0 || p.partial_rows != 0) {
        std::fprintf(stderr,
                     "GATE FAILED: hot=%u phase=%s: %llu oracle trips, %llu "
                     "mismatches, %llu partial-visibility rows (want 0/0/0)\n",
                     p.hot_persons, p.phase.empty() ? "none" : p.phase.c_str(),
                     (unsigned long long)p.trips,
                     (unsigned long long)p.mismatches,
                     (unsigned long long)p.partial_rows);
        rc = 1;
      }
      if (p.committed == 0) {
        std::fprintf(stderr, "GATE FAILED: hot=%u phase=%s committed nothing\n",
                     p.hot_persons, p.phase.empty() ? "none" : p.phase.c_str());
        rc = 1;
      }
    }
  };
  gate(points);
  gate(chaos);
  for (const TxnPoint& p : chaos) {
    if (p.crashes == 0) {
      std::fprintf(stderr,
                   "GATE FAILED: chaos phase %s never crashed — the cell "
                   "measured nothing\n", p.phase.c_str());
      rc = 1;
    }
  }
  // The sweep measured contention: conflict activity strictly grows from the
  // coolest window to the hottest.
  const TxnPoint& cool = points.front();
  const TxnPoint& hotp = points.back();
  if (hotp.aborted + hotp.retried <= cool.aborted + cool.retried) {
    std::fprintf(stderr,
                 "GATE FAILED: conflict activity did not rise with contention "
                 "(hot=%u: %llu aborts+retries vs hot=%u: %llu)\n",
                 hotp.hot_persons,
                 (unsigned long long)(hotp.aborted + hotp.retried),
                 cool.hot_persons,
                 (unsigned long long)(cool.aborted + cool.retried));
    rc = 1;
  }
  if (rc == 0) {
    std::printf("gates passed: zero oracle trips and zero partial-visibility "
                "rows at every contention point and chaos phase; conflict "
                "activity rises with contention\n");
  }
  return rc;
}
