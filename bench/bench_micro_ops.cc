// Micro-benchmarks (google-benchmark) for the PSTM hot-path primitives:
// weight splitting, memoranda operations, traverser serialization, CSR
// expansion and value hashing. These measure *real* CPU cost on this
// machine, complementing the virtual-time figure harnesses; they also
// justify the cost-model constants in sim/cost_model.h.

#include <benchmark/benchmark.h>

#include <memory>

#include "graph/generators.h"
#include "pstm/memo.h"
#include "pstm/traverser.h"
#include "pstm/weight.h"

namespace graphdance {
namespace {

void BM_WeightSplit(benchmark::State& state) {
  Rng rng(1);
  const size_t n = state.range(0);
  for (auto _ : state) {
    WeightSplitter split(kUnitWeight, &rng);
    Weight sum = 0;
    for (size_t i = 0; i + 1 < n; ++i) sum += split.Take();
    sum += split.TakeLast();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_WeightSplit)->Arg(2)->Arg(8)->Arg(64);

void BM_DistanceMemoImprove(benchmark::State& state) {
  DistanceMemo memo;
  Rng rng(2);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(memo.TryImprove(rng.Below(100000), i++ % 8));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DistanceMemoImprove);

void BM_DedupMemoFirstSight(benchmark::State& state) {
  DedupMemo memo;
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        memo.FirstSight(Value(static_cast<int64_t>(rng.Below(100000)))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DedupMemoFirstSight);

void BM_TraverserSerde(benchmark::State& state) {
  Traverser t;
  t.vertex = 123456;
  t.hop = 3;
  t.weight = 0x1234567890abcdefULL;
  t.vars.push_back(Value(int64_t{42}));
  t.vars.push_back(Value("payload"));
  for (auto _ : state) {
    ByteWriter w(64);
    t.Serialize(&w);
    ByteReader r(w.data(), w.size());
    Traverser back = Traverser::Deserialize(&r);
    benchmark::DoNotOptimize(back.vertex);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraverserSerde);

void BM_CsrExpand(benchmark::State& state) {
  auto schema = std::make_shared<Schema>();
  PowerLawGraphOptions opt;
  opt.num_vertices = 1 << 14;
  opt.num_edges = 1 << 17;
  auto graph = GeneratePowerLawGraph(opt, schema, 1).TakeValue();
  LabelId link = schema->EdgeLabel("link");
  Rng rng(4);
  uint64_t edges = 0;
  for (auto _ : state) {
    VertexId v = rng.Below(opt.num_vertices);
    graph->partition(0).ForEachNeighbor(v, link, Direction::kOut, kMaxTimestamp - 1,
                                        [&](VertexId d, const Value&) {
                                          benchmark::DoNotOptimize(d);
                                          ++edges;
                                        });
  }
  state.SetItemsProcessed(static_cast<int64_t>(edges));
}
BENCHMARK(BM_CsrExpand);

void BM_ValueHash(benchmark::State& state) {
  Value values[] = {Value(int64_t{123}), Value(2.5), Value("a-string-key")};
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(values[i++ % 3].Hash());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ValueHash);

}  // namespace
}  // namespace graphdance

BENCHMARK_MAIN();
