// Figure 13: relative k-hop latency under legacy hardware configurations —
// reduced network bandwidth and reduced CPU core count — normalized to the
// modern configuration (200 Gbps, full cores).
//
// Flags: --scale S (default 0.25), --trials N (default 3)

#include <cmath>

#include "bench/bench_common.h"

using namespace graphdance;
using namespace graphdance::bench;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  double scale = ArgDouble(argc, argv, "--scale", 0.25);
  int trials = static_cast<int>(ArgDouble(argc, argv, "--trials", 3));
  PrintHeader("Figure 13: hardware impact (bandwidth / core count reduction)");

  const double bandwidths[] = {200.0, 100.0, 25.0};
  const uint32_t cores[] = {4, 2, 1};  // workers per node (8 nodes)

  for (const char* preset : {"lj-sim"}) {
    for (int k : {2, 3, 4}) {
      // Baseline: 200 Gbps, 4 workers/node.
      ClusterConfig base;
      base.num_nodes = 8;
      base.workers_per_node = 4;
      BenchGraph bg = MakeBenchGraph(preset, scale, base.num_partitions());
      double base_us = AvgKHopLatency(base, bg.graph, bg.weight, k, trials);

      std::printf("\n%s %d-hop (baseline %.0f us = 1.00):\n", preset, k, base_us);
      std::printf("  %-22s", "bandwidth sweep:");
      for (double bw : bandwidths) {
        ClusterConfig cfg = base;
        cfg.cost.bandwidth_gbps = bw;
        // Older NIC generations also sustain a lower message rate; scale the
        // per-frame overhead sub-linearly with the bandwidth generation.
        cfg.cost.frame_overhead_ns = static_cast<uint64_t>(
            base.cost.frame_overhead_ns * std::sqrt(200.0 / bw));
        double us = AvgKHopLatency(cfg, bg.graph, bg.weight, k, trials);
        std::printf("  %3.0fGbps %5.2fx", bw, us / base_us);
      }
      std::printf("\n  %-22s", "core-count sweep:");
      for (uint32_t c : cores) {
        ClusterConfig cfg;
        cfg.num_nodes = 8;
        cfg.workers_per_node = c;
        BenchGraph small = MakeBenchGraph(preset, scale, cfg.num_partitions());
        double us = AvgKHopLatency(cfg, small.graph, small.weight, k, trials);
        std::printf("  %3ucores %5.2fx", c * 8, us / base_us);
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape (paper): 3- and 4-hop queries degrade up to ~2.7x\n"
      "with reduced bandwidth or cores (either can bottleneck); 2-hop is\n"
      "latency-bound and largely insensitive.\n");
  return 0;
}
