// Memory-pressure curve for the spill tier (DESIGN.md §12): the same
// concurrent k-hop workload run under progressively tighter per-worker memo
// budgets with the cost-modelled storage tier absorbing the overflow.
// Reports, per budget point: completed/failed queries, p95 latency of
// completed queries, bytes written/faulted through the tier and the peak
// parked bytes — the curve the spill manager is supposed to flatten
// (smooth I/O-bound degradation instead of aborts).
//
// Gated exit (CI): zero failed queries at every spill-on point (the tier
// capacity is never exhausted, so the last-resort abort must not fire);
// p95 latency degrades monotonically (within jitter tolerance) as the
// budget shrinks, with no cliff between consecutive points; and at the
// tightest budget the spill-off control run aborts at least one query —
// proving the tier absorbed pressure that governance alone rejects.
//
// Also reports the §V-A3 endgame at a dataset that exceeds modelled RAM:
// a memory-capped single node (swap-penalty model) vs a distributed
// cluster running the same load through the spill tier. Writes
// BENCH_spill.json.
//
// Flags: --queries N concurrent queries per point (default 24),
//        --seed R (default 31)

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/metrics.h"

using namespace graphdance;
using namespace graphdance::bench;

namespace {

// p95 may wobble a little across budget points (different eviction sets
// shift the schedule); it must not *improve* by more than this factor as
// the budget tightens, and must not blow up by more than the cliff bound
// between consecutive points.
constexpr double kMonotoneTolerance = 0.95;
constexpr double kCliffBound = 10.0;

ClusterConfig SpillConfig() {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.workers_per_node = 2;
  cfg.progress_timeout_ns = 50'000'000;
  cfg.qos.enabled = true;
  // Generous admission: latency differences between points must come from
  // spill I/O charges, not from queueing behind admission slots.
  cfg.qos.max_concurrent_queries = 64;
  cfg.qos.max_queued_queries = 256;
  cfg.qos.memo_check_interval = 4;
  return cfg;
}

struct Workload {
  BenchGraph bg;
  std::vector<std::shared_ptr<const Plan>> plans;
};

Workload MakeWorkload(int num_queries, uint32_t partitions, uint64_t seed) {
  Workload w;
  w.bg = MakeBenchGraph("lj-sim", /*scale=*/0.1, partitions, seed);
  Rng rng(seed);
  for (int i = 0; i < num_queries; ++i) {
    int k = 2 + (i % 2);
    w.plans.push_back(
        KHopPlan(w.bg.graph, w.bg.weight, PickActiveStart(w.bg.graph, &rng), k));
  }
  return w;
}

struct PressurePoint {
  double budget_fraction = 0.0;  // of the unconstrained peak
  uint64_t budget_bytes = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t p95_us = 0;
  uint64_t spill_written = 0;
  uint64_t spill_faults = 0;
  uint64_t spill_peak_bytes = 0;
  uint64_t last_resort = 0;
  uint64_t memo_aborts = 0;
};

PressurePoint RunPoint(const Workload& w, uint64_t budget, double fraction,
                       bool spill_on) {
  ClusterConfig cfg = SpillConfig();
  cfg.qos.worker_memo_budget_bytes = budget;
  cfg.qos.spill.enabled = spill_on;
  cfg.qos.spill.memo_spill_watermark = 0.75;
  cfg.qos.spill.memo_low_watermark = 0.5;

  SimCluster cluster(cfg, w.bg.graph);
  std::vector<uint64_t> ids;
  for (const auto& p : w.plans) ids.push_back(cluster.Submit(p, /*at=*/0));
  Status st = cluster.RunToCompletion();
  if (!st.ok()) {
    std::fprintf(stderr, "pressure point %.2fx failed: %s\n", fraction,
                 st.ToString().c_str());
    std::exit(2);
  }

  PressurePoint p;
  p.budget_fraction = fraction;
  p.budget_bytes = budget;
  obs::LogHistogram lat;
  for (uint64_t id : ids) {
    const QueryResult& r = cluster.result(id);
    if (r.done && !r.failed) {
      ++p.completed;
      lat.Record(r.LatencyNanos());
    } else {
      ++p.failed;
    }
  }
  p.p95_us = lat.P95() / 1000;
  obs::MetricsSnapshot snap = cluster.MetricsSnapshot();
  p.spill_written = snap.qos.spill_memo_bytes_written;
  p.spill_faults = snap.qos.spill_memo_faults;
  p.spill_peak_bytes = snap.qos.spill_peak_bytes;
  p.last_resort = snap.qos.spill_last_resort;
  p.memo_aborts = snap.qos.memo_aborts;
  return p;
}

/// Unconstrained run: how many memo bytes does the workload actually want
/// per worker? Budget points below are fractions of this peak.
uint64_t UnconstrainedPeak(const Workload& w) {
  ClusterConfig cfg = SpillConfig();
  SimCluster cluster(cfg, w.bg.graph);
  for (const auto& p : w.plans) cluster.Submit(p, /*at=*/0);
  Status st = cluster.RunToCompletion();
  if (!st.ok()) {
    std::fprintf(stderr, "unconstrained run failed: %s\n",
                 st.ToString().c_str());
    std::exit(2);
  }
  return cluster.MetricsSnapshot().qos.peak_memo_bytes;
}

/// §V-A3 endgame: the dataset exceeds one node's modelled RAM. The capped
/// single node pays the swap-thrash multiplier on every access; the
/// distributed cluster splits the data and runs the overflow through the
/// spill tier instead. Returns {single_capped_us, distributed_spill_us}.
std::pair<double, double> SingleVsDistributed(uint64_t seed) {
  const int kTrials = 4;
  // Single node, memory capped at half the dataset: swap penalty engages.
  ClusterConfig scfg;
  scfg.num_nodes = 1;
  scfg.workers_per_node = 2;
  scfg.progress_timeout_ns = 50'000'000;
  BenchGraph single =
      MakeBenchGraph("lj-sim", /*scale=*/0.1, scfg.num_partitions(), seed);
  scfg.memory_cap_bytes = single.graph->stats().raw_bytes / 2;
  double single_us =
      AvgKHopLatency(scfg, single.graph, single.weight, 3, kTrials, seed);

  // Distributed with the spill tier: same logical dataset split across four
  // nodes, each worker under a memo budget far below what the single node
  // needed resident.
  ClusterConfig dcfg = SpillConfig();
  dcfg.num_nodes = 4;
  BenchGraph dist =
      MakeBenchGraph("lj-sim", /*scale=*/0.1, dcfg.num_partitions(), seed);
  dcfg.qos.worker_memo_budget_bytes = 16u << 10;
  dcfg.qos.spill.enabled = true;
  double dist_us =
      AvgKHopLatency(dcfg, dist.graph, dist.weight, 3, kTrials, seed);
  return {single_us, dist_us};
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarn);
  int num_queries = static_cast<int>(ArgDouble(argc, argv, "--queries", 24));
  uint64_t seed = static_cast<uint64_t>(ArgDouble(argc, argv, "--seed", 31));
  PrintHeader("Spill tier: memory-pressure curve under shrinking memo budgets");

  ClusterConfig cfg = SpillConfig();
  Workload w = MakeWorkload(num_queries, cfg.num_partitions(), seed);
  uint64_t peak = UnconstrainedPeak(w);
  std::printf("unconstrained peak memo bytes per sweep: %llu\n\n",
              (unsigned long long)peak);

  std::printf("%8s | %10s %5s %5s %9s %12s %8s %10s %6s\n", "budget",
              "bytes", "done", "fail", "p95 us", "written B", "faults",
              "peak spill", "abort");
  const double kFractions[] = {1.0, 0.75, 0.5, 0.35, 0.25};
  std::vector<PressurePoint> points;
  for (double f : kFractions) {
    uint64_t budget = std::max<uint64_t>(
        static_cast<uint64_t>(f * static_cast<double>(peak)), 1024);
    PressurePoint p = RunPoint(w, budget, f, /*spill_on=*/true);
    std::printf("%7.2fx | %10llu %5llu %5llu %9llu %12llu %8llu %10llu %6llu\n",
                p.budget_fraction, (unsigned long long)p.budget_bytes,
                (unsigned long long)p.completed, (unsigned long long)p.failed,
                (unsigned long long)p.p95_us,
                (unsigned long long)p.spill_written,
                (unsigned long long)p.spill_faults,
                (unsigned long long)p.spill_peak_bytes,
                (unsigned long long)p.memo_aborts);
    points.push_back(p);
  }

  // Spill-off control at the tightest budget: governance alone must abort.
  PressurePoint off = RunPoint(w, points.back().budget_bytes,
                               points.back().budget_fraction,
                               /*spill_on=*/false);
  std::printf("\nspill-off control at %.2fx: %llu completed, %llu failed, "
              "%llu memo aborts\n",
              off.budget_fraction, (unsigned long long)off.completed,
              (unsigned long long)off.failed,
              (unsigned long long)off.memo_aborts);

  auto [single_us, dist_us] = SingleVsDistributed(seed);
  std::printf("\nsingle capped (swap-thrash) avg: %.1f us | distributed + "
              "spill tier avg: %.1f us\n",
              single_us, dist_us);

  // Fixed-point with explicit precision: default ostream precision renders
  // large doubles in lossy scientific notation, which breaks trajectory
  // diffing on the JSON.
  std::ofstream json("BENCH_spill.json");
  json << std::fixed << std::setprecision(3);
  json << "{\n  \"unconstrained_peak_memo_bytes\": " << peak
       << ",\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const PressurePoint& p = points[i];
    json << "    {\"budget_fraction\": " << p.budget_fraction
         << ", \"budget_bytes\": " << p.budget_bytes
         << ", \"completed\": " << p.completed << ", \"failed\": " << p.failed
         << ", \"p95_us\": " << p.p95_us
         << ", \"spill_memo_bytes_written\": " << p.spill_written
         << ", \"spill_memo_faults\": " << p.spill_faults
         << ", \"spill_peak_bytes\": " << p.spill_peak_bytes
         << ", \"spill_last_resort\": " << p.last_resort
         << ", \"memo_aborts\": " << p.memo_aborts << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"spill_off_control\": {\"budget_bytes\": "
       << off.budget_bytes << ", \"completed\": " << off.completed
       << ", \"failed\": " << off.failed
       << ", \"memo_aborts\": " << off.memo_aborts << "},\n"
       << "  \"single_vs_distributed\": {\"single_capped_avg_us\": "
       << single_us << ", \"distributed_spill_avg_us\": " << dist_us
       << "}\n}\n";
  std::printf("\nwrote BENCH_spill.json\n");

  // --- gated exit ---------------------------------------------------------
  int rc = 0;
  for (const PressurePoint& p : points) {
    if (p.failed != 0 || p.last_resort != 0) {
      std::fprintf(stderr,
                   "GATE FAILED: %llu failed queries / %llu last-resort "
                   "escalations at budget %.2fx (tier capacity was never "
                   "exhausted; want 0/0)\n",
                   (unsigned long long)p.failed,
                   (unsigned long long)p.last_resort, p.budget_fraction);
      rc = 1;
    }
  }
  for (size_t i = 1; i < points.size(); ++i) {
    double prev = static_cast<double>(points[i - 1].p95_us);
    double cur = static_cast<double>(points[i].p95_us);
    if (cur < prev * kMonotoneTolerance) {
      std::fprintf(stderr,
                   "GATE FAILED: p95 improved from %llu us to %llu us as the "
                   "budget tightened (%.2fx -> %.2fx): the tier is not being "
                   "charged\n",
                   (unsigned long long)points[i - 1].p95_us,
                   (unsigned long long)points[i].p95_us,
                   points[i - 1].budget_fraction, points[i].budget_fraction);
      rc = 1;
    }
    if (prev > 0 && cur > prev * kCliffBound) {
      std::fprintf(stderr,
                   "GATE FAILED: p95 cliff %llu us -> %llu us between "
                   "consecutive budget points (%.2fx -> %.2fx)\n",
                   (unsigned long long)points[i - 1].p95_us,
                   (unsigned long long)points[i].p95_us,
                   points[i - 1].budget_fraction, points[i].budget_fraction);
      rc = 1;
    }
  }
  if (points.back().spill_written == 0) {
    std::fprintf(stderr, "GATE FAILED: the tightest budget never spilled — "
                         "the curve measured nothing\n");
    rc = 1;
  }
  if (off.memo_aborts == 0) {
    std::fprintf(stderr,
                 "GATE FAILED: the spill-off control at the tightest budget "
                 "aborted nothing — the budget was not actually tight\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf("gates passed: zero failures at every spill-on point, p95 "
                "degrades smoothly, spill-off control aborts\n");
  }
  return rc;
}
