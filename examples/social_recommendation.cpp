// The paper's running example (Fig. 1): recommend the 10 most influential
// people within k "knows" hops of a user — influence is the integer `weight`
// property, ties broken by vertex id. Runs the same query on the
// asynchronous PSTM engine and the BSP baseline and prints both virtual
// latencies, reproducing the headline comparison in miniature.
//
//   $ ./examples/social_recommendation [k]

#include <cstdio>
#include <cstdlib>

#include "graph/generators.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"

using namespace graphdance;

int main(int argc, char** argv) {
  int k = argc > 1 ? std::atoi(argv[1]) : 2;

  // A LiveJournal-shaped power-law graph (scaled-down snapshot substitute).
  auto schema = std::make_shared<Schema>();
  ClusterConfig config;
  config.num_nodes = 4;
  config.workers_per_node = 4;
  auto graph =
      GeneratePreset("lj-sim", /*scale=*/1.0, schema, config.num_partitions())
          .TakeValue();
  PropKeyId weight = schema->PropKey("weight");
  std::printf("graph: %lu vertices, %lu edges\n",
              (unsigned long)graph->stats().num_vertices,
              (unsigned long)graph->stats().num_edges);

  const VertexId user = 42;
  auto make_plan = [&] {
    return Traversal(graph)
        .V({user})
        .RepeatOut("link", static_cast<uint16_t>(k), /*dedup=*/true)
        .Project({Operand::VertexIdOp(), Operand::Property(weight)})
        .OrderByLimit({{1, false}, {0, true}}, 10)
        .Build()
        .TakeValue();
  };

  std::printf("\ntop-10 most influential people within %d hops of user %lu:\n", k,
              (unsigned long)user);
  SimCluster async_cluster(config, graph);
  QueryResult res = async_cluster.Run(make_plan()).TakeValue();
  for (const auto& row : res.rows) {
    std::printf("  person %-8s influence %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  ClusterConfig bsp_config = config;
  bsp_config.engine = EngineKind::kBsp;
  SimCluster bsp_cluster(bsp_config, graph);
  QueryResult bsp = bsp_cluster.Run(make_plan()).TakeValue();

  std::printf("\nvirtual latency:  GraphDance (async PSTM) %8.1f us\n",
              res.LatencyMicros());
  std::printf("                  BSP baseline            %8.1f us  (%.2fx)\n",
              bsp.LatencyMicros(), bsp.LatencyMicros() / res.LatencyMicros());
  return 0;
}
