// LDBC SNB end-to-end demo: generates a synthetic Social Network Benchmark
// dataset, runs a selection of Interactive Complex queries, then drives the
// mixed interactive workload (IC + IS + updates) and prints per-family
// latency statistics.
//
//   $ ./examples/ldbc_snb_demo [num_persons]

#include <cstdio>
#include <cstdlib>

#include "ldbc/driver.h"
#include "ldbc/snb_generator.h"
#include "ldbc/snb_queries.h"
#include "runtime/sim_cluster.h"
#include "txn/txn_manager.h"

using namespace graphdance;

int main(int argc, char** argv) {
  uint64_t persons = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1500;

  ClusterConfig config;
  config.num_nodes = 4;
  config.workers_per_node = 4;

  SnbConfig snb_cfg = SnbConfig::Tiny(persons);
  auto data = GenerateSnb(snb_cfg, config.num_partitions()).TakeValue();
  std::printf("SNB dataset: %lu persons, %lu posts, %lu comments, %lu edges\n",
              (unsigned long)persons, (unsigned long)data->num_posts,
              (unsigned long)data->num_comments,
              (unsigned long)data->graph->stats().num_edges);

  SimCluster cluster(config, data->graph);
  SnbParamGen params(*data, 7);
  SnbParams p = params.Next();

  // A few representative interactive complex queries.
  const int picks[] = {1, 2, 6, 9, 13};
  for (int number : picks) {
    auto plan = BuildInteractiveComplex(number, *data, p).TakeValue();
    QueryResult res = cluster.Run(plan).TakeValue();
    std::printf("\nIC%-2d -> %zu rows in %.1f us virtual; first rows:\n", number,
                res.rows.size(), res.LatencyMicros());
    size_t shown = 0;
    for (const auto& row : res.rows) {
      if (++shown > 3) break;
      std::printf("   [");
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", row[i].ToString().c_str());
      }
      std::printf("]\n");
    }
  }

  // The mixed interactive workload at a moderate TCR.
  SimCluster mixed_cluster(config, data->graph);
  TransactionManager txn(&mixed_cluster);
  DriverConfig dcfg;
  dcfg.tcr = 0.5;
  dcfg.duration_s = 0.25;
  DriverReport report = RunMixedWorkload(&mixed_cluster, &txn, *data, dcfg);

  std::printf("\nmixed workload @ TCR %.2f: %lu ops, kept up: %s\n", dcfg.tcr,
              (unsigned long)report.total_operations,
              report.kept_up ? "yes" : "NO");
  std::printf("  avg IC latency %.1f us | avg IS latency %.1f us | updates %lu "
              "committed, %lu aborted\n",
              report.AvgLatencyMicros("IC"), report.AvgLatencyMicros("IS"),
              (unsigned long)txn.committed(), (unsigned long)txn.aborted());
  return 0;
}
