// Offline analytics expressed as PSTM traversal programs: PageRank (each
// iteration compiles to Project -> Expand -> GroupBy(sum) -> Project, i.e.
// one progress-tracked scope per iteration) and an out-degree histogram.
// Demonstrates the paper's §III claim that whole-graph processing tasks fit
// the extended Gremlin machine.
//
//   $ ./examples/offline_analytics [iterations]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "analytics/analytics.h"
#include "graph/generators.h"
#include "runtime/sim_cluster.h"

using namespace graphdance;

int main(int argc, char** argv) {
  int iterations = argc > 1 ? std::atoi(argv[1]) : 5;

  auto schema = std::make_shared<Schema>();
  ClusterConfig config;
  config.num_nodes = 4;
  config.workers_per_node = 4;
  auto graph = GeneratePreset("lj-sim", 0.5, schema, config.num_partitions())
                   .TakeValue();
  std::printf("graph: %lu vertices, %lu edges\n",
              (unsigned long)graph->stats().num_vertices,
              (unsigned long)graph->stats().num_edges);

  // PageRank: top-10 ranked vertices.
  SimCluster cluster(config, graph);
  auto plan = BuildPageRankPlan(graph, "node", "link", iterations).TakeValue();
  QueryResult res = cluster.Run(plan).TakeValue();
  std::printf("\nPageRank (%d iterations) over %zu reachable vertices in %.0f us"
              " virtual:\n",
              iterations, res.rows.size(), res.LatencyMicros());

  std::sort(res.rows.begin(), res.rows.end(), [](const Row& a, const Row& b) {
    return a[1].ToDouble() > b[1].ToDouble();
  });
  for (size_t i = 0; i < res.rows.size() && i < 10; ++i) {
    std::printf("  #%zu vertex %-8s rank %.6f\n", i + 1,
                res.rows[i][0].ToString().c_str(), res.rows[i][1].ToDouble());
  }

  // Degree histogram (first buckets).
  SimCluster hist_cluster(config, graph);
  auto hist = hist_cluster.Run(
      BuildDegreeHistogramPlan(graph, "node", "link").TakeValue());
  std::printf("\nout-degree histogram (first 8 buckets):\n");
  size_t shown = 0;
  for (const Row& row : hist.TakeValue().rows) {
    if (++shown > 8) break;
    std::printf("  degree %-4s : %s vertices\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }
  return 0;
}
