// Quickstart: build a small property graph, run Gremlin-style queries on a
// simulated GraphDance cluster, and read the results.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "graph/graph.h"
#include "query/gremlin.h"
#include "runtime/sim_cluster.h"

using namespace graphdance;

int main() {
  // 1. Define the schema and load a small social graph.
  auto schema = std::make_shared<Schema>();
  LabelId person = schema->VertexLabel("person");
  LabelId knows = schema->EdgeLabel("knows");
  PropKeyId name = schema->PropKey("name");
  PropKeyId age = schema->PropKey("age");

  // A cluster of 2 simulated nodes x 2 workers = 4 partitions.
  GraphBuilder builder(schema, /*num_partitions=*/4);
  struct Row0 {
    VertexId id;
    const char* name;
    int64_t age;
  };
  const Row0 people[] = {{1, "alice", 34}, {2, "bob", 28},   {3, "carol", 45},
                         {4, "dave", 23},  {5, "erin", 39},  {6, "frank", 31}};
  for (const Row0& p : people) {
    builder.AddVertex(p.id, person, {{name, Value(p.name)}, {age, Value(p.age)}});
  }
  const std::pair<VertexId, VertexId> friendships[] = {
      {1, 2}, {2, 3}, {3, 4}, {1, 5}, {5, 6}, {2, 6}, {4, 1}};
  for (auto [a, b] : friendships) {
    builder.AddEdge(a, b, knows);
    builder.AddEdge(b, a, knows);  // undirected friendship
  }
  auto graph = builder.Build().TakeValue();

  // 2. Spin up the simulated cluster.
  ClusterConfig config;
  config.num_nodes = 2;
  config.workers_per_node = 2;
  SimCluster cluster(config, graph);

  // 3. Who does alice know, and how old are they?
  auto plan = Traversal(graph)
                  .V({1})
                  .Out("knows")
                  .Project({Operand::Property(name), Operand::Property(age)})
                  .OrderByLimit({{1, /*ascending=*/false}}, 10)
                  .Build()
                  .TakeValue();
  QueryResult result = cluster.Run(plan).TakeValue();

  std::printf("alice's friends (oldest first), %.1f us virtual latency:\n",
              result.LatencyMicros());
  for (const auto& row : result.rows) {
    std::printf("  %-8s age %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  // 4. Friends-of-friends count (2-hop neighborhood, deduplicated).
  auto fof = Traversal(graph).V({1}).RepeatOut("knows", 2).Count().Build().TakeValue();
  QueryResult fof_result = cluster.Run(fof).TakeValue();
  std::printf("\npeople within 2 hops of alice: %s\n",
              fof_result.rows[0][0].ToString().c_str());
  return 0;
}
