// Real-time fraud detection over a transfer graph: find money-flow paths of
// a fixed length between a flagged source account and a flagged destination
// account. Demonstrates the cost-based join planner (paper Fig. 3 /
// JoinSelectionStrategy): the path pattern is split at the cheapest point
// and matched bidirectionally with a double-pipelined join.
//
//   $ ./examples/fraud_detection

#include <cstdio>

#include "graph/generators.h"
#include "query/gremlin.h"
#include "query/planner.h"
#include "runtime/sim_cluster.h"

using namespace graphdance;

int main() {
  // Transfer graph. Uniform degree keeps full path enumeration bounded —
  // the naive plan below enumerates every 4-hop path, which on a power-law
  // graph with money-mule hubs explodes combinatorially (exactly why the
  // join plan matters in production).
  auto schema = std::make_shared<Schema>();
  ClusterConfig config;
  config.num_nodes = 4;
  config.workers_per_node = 4;
  auto graph = GenerateUniformGraph(/*num_vertices=*/4096, /*num_edges=*/49152,
                                    /*seed=*/77, schema, config.num_partitions())
                   .TakeValue();

  const VertexId source = 101;   // flagged originator
  const VertexId sink = 2042;    // flagged beneficiary

  // Pattern: source -> transfer^4 -> sink.
  PathPattern pattern;
  for (int i = 0; i < 4; ++i) pattern.hops.push_back({"link", Direction::kOut});

  JoinPlanChoice choice =
      ChooseJoinSplit(graph->stats(), *schema, pattern, /*card_a=*/1.0,
                      /*card_b=*/1.0);
  std::printf("join planner: split at hop %zu (fwd est %.0f, bwd est %.0f) -> %s\n",
              choice.split, choice.cost_forward, choice.cost_backward,
              choice.use_join ? "bidirectional join" : "unidirectional expansion");

  auto traversal =
      BuildPathQuery(graph, {source}, {sink}, pattern, choice).TakeValue();
  auto plan = traversal.Count().Build().TakeValue();

  SimCluster cluster(config, graph);
  QueryResult res = cluster.Run(plan).TakeValue();
  std::printf("suspicious 4-hop transfer paths %lu -> %lu: %s\n",
              (unsigned long)source, (unsigned long)sink,
              res.rows[0][0].ToString().c_str());
  std::printf("virtual latency: %.1f us\n", res.LatencyMicros());

  // Compare against the naive single-direction plan the planner rejected.
  JoinPlanChoice naive;
  naive.split = pattern.hops.size();
  naive.use_join = false;
  auto naive_plan = BuildPathQuery(graph, {source}, {sink}, pattern, naive)
                        .TakeValue()
                        .Count()
                        .Build()
                        .TakeValue();
  SimCluster naive_cluster(config, graph);
  QueryResult naive_res = naive_cluster.Run(naive_plan).TakeValue();
  std::printf("naive forward-only plan: %.1f us (%.2fx slower), same count: %s\n",
              naive_res.LatencyMicros(),
              naive_res.LatencyMicros() / res.LatencyMicros(),
              naive_res.rows == res.rows ? "yes" : "NO (bug!)");
  return 0;
}
