// graphdance_cli: an interactive shell over the GraphDance library. Loads a
// synthetic dataset into a simulated cluster and runs queries against it.
//
//   $ ./tools/graphdance_cli
//   gd> load lj-sim 0.25
//   gd> khop 42 3
//   gd> pagerank 5
//   gd> snb 800
//   gd> ic 9
//   gd> engine bsp
//   gd> stats
//   gd> help

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analytics/analytics.h"
#include "check/oracle.h"
#include "check/shrink.h"
#include "check/txn_oracle.h"
#include "stream/stream_oracle.h"
#include "graph/generators.h"
#include "ldbc/driver.h"
#include "ldbc/snb_generator.h"
#include "ldbc/snb_queries.h"
#include "query/gremlin.h"
#include "rt/thread_cluster.h"
#include "runtime/sim_cluster.h"

using namespace graphdance;

namespace {

struct Shell {
  std::shared_ptr<Schema> schema;
  std::shared_ptr<PartitionedGraph> graph;
  std::shared_ptr<SnbDataset> snb;
  ClusterConfig config;
  uint32_t real_threads = 0;  // `threads N`: run plans on a ThreadCluster
  uint64_t next_param_seed = 1;
  bool show_metrics = false;      // --metrics: print MetricsSnapshot per run
  std::string trace_out;          // --trace-out: write Chrome trace JSON
  std::string last_metrics;       // snapshot text of the most recent run

  Shell() {
    config.num_nodes = 4;
    config.workers_per_node = 4;
  }

  /// Post-run observability: remembers the snapshot (for `metrics`), prints
  /// it under --metrics, and appends the run's spans to the trace file.
  void Observe(SimCluster& cluster) {
    last_metrics = cluster.MetricsSnapshot().ToString();
    if (show_metrics) std::printf("%s", last_metrics.c_str());
    if (!trace_out.empty()) {
      if (cluster.tracer().WriteJson(trace_out)) {
        std::printf("trace written to %s (load in chrome://tracing)\n",
                    trace_out.c_str());
      } else {
        std::printf("error: cannot write trace to %s\n", trace_out.c_str());
      }
    }
  }

  void PrintRows(const QueryResult& result, size_t max_rows = 20) {
    std::printf("%zu row(s), %.1f us virtual latency\n", result.rows.size(),
                result.LatencyMicros());
    PrintRowsBody(result, max_rows);
  }

  void PrintRowsBody(const QueryResult& result, size_t max_rows = 20) {
    size_t shown = 0;
    for (const Row& row : result.rows) {
      if (++shown > max_rows) {
        std::printf("  ... (%zu more)\n", result.rows.size() - max_rows);
        break;
      }
      std::printf("  [");
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", row[i].ToString().c_str());
      }
      std::printf("]\n");
    }
  }

  bool RunPlan(const Result<std::shared_ptr<const Plan>>& plan) {
    if (!plan.ok()) {
      std::printf("plan error: %s\n", plan.status().ToString().c_str());
      return false;
    }
    if (real_threads > 0) {
      // Real-thread mode (DESIGN.md §14): same plan, same rows, actual cores.
      rt::ThreadClusterConfig tcfg;
      tcfg.num_threads = real_threads;
      tcfg.traverser_bulking = config.traverser_bulking;
      rt::ThreadCluster cluster(tcfg, graph);
      auto res = cluster.Run(plan.value());
      if (!res.ok()) {
        std::printf("run error: %s\n", res.status().ToString().c_str());
        return false;
      }
      std::printf("%zu row(s), %.3f ms wall on %u thread(s)\n",
                  res.value().rows.size(),
                  res.value().LatencyNanos() / 1e6, real_threads);
      QueryResult shown = res.TakeValue();
      PrintRowsBody(shown);
      last_metrics = cluster.MetricsSnapshot().ToString();
      if (show_metrics) std::printf("%s", last_metrics.c_str());
      return true;
    }
    SimCluster cluster(config, graph);
    auto res = cluster.Run(plan.value());
    if (!res.ok()) {
      std::printf("run error: %s\n", res.status().ToString().c_str());
      return false;
    }
    PrintRows(res.value());
    Observe(cluster);
    return true;
  }

  void Load(const std::string& preset, double scale) {
    schema = std::make_shared<Schema>();
    auto g = GeneratePreset(preset, scale, schema, config.num_partitions());
    if (!g.ok()) {
      std::printf("error: %s\n", g.status().ToString().c_str());
      return;
    }
    graph = g.TakeValue();
    snb.reset();
    Stats();
  }

  void LoadSnb(uint64_t persons) {
    auto d = GenerateSnb(SnbConfig::Tiny(persons), config.num_partitions());
    if (!d.ok()) {
      std::printf("error: %s\n", d.status().ToString().c_str());
      return;
    }
    snb = d.TakeValue();
    schema = snb->schema;
    graph = snb->graph;
    Stats();
  }

  void Stats() {
    if (graph == nullptr) {
      std::printf("no graph loaded\n");
      return;
    }
    std::printf("graph: %lu vertices, %lu edges, %.1f MB across %u partitions "
                "(%u nodes x %u workers), engine=%s\n",
                (unsigned long)graph->stats().num_vertices,
                (unsigned long)graph->stats().num_edges,
                graph->stats().raw_bytes / 1048576.0, config.num_partitions(),
                config.num_nodes, config.workers_per_node,
                EngineKindName(config.engine));
  }

  /// `check [seeds]` / `check replay <token>` / `check shrink <token>`.
  /// Always runs on the built-in oracle workload — the loaded dataset (if
  /// any) is untouched, since the reference demands a regenerable graph.
  void Check(std::istringstream& in) {
    std::string sub;
    in >> sub;
    check::WorkloadFactory factory = check::MakeDefaultCheckWorkload();
    check::DifferentialOptions opt;
    bool stream_matrix = false;
    bool txn_matrix = false;

    if (sub == "qos") {
      // `check qos [seeds]`: the whole matrix under the standard QoS stress
      // config (replay tokens of failing cells then carry `;qos=1`).
      opt.qos = true;
      sub.clear();
      in >> sub;
    } else if (sub == "spill") {
      // `check spill [seeds]`: the matrix under the spill stress config — a
      // memo budget tight enough to force evictions and fault-ins in every
      // cell (failing-cell tokens then carry `;spill=1`).
      opt.spill = true;
      sub.clear();
      in >> sub;
    } else if (sub == "stream") {
      // `check stream [seeds]`: the freshness differential — every engine x
      // [seeds] schedules running the streaming scenario live, each cell's
      // snapshot queries and standing cumulative emissions diffed against
      // from-scratch materializations (failing tokens carry `;stream=1`).
      // The acceptance gate runs 32 seeds, so that is the default here.
      stream_matrix = true;
      opt.num_seeds = 32;
      sub.clear();
      in >> sub;
    } else if (sub == "txn") {
      // `check txn [seeds]`: the serializability matrix — every engine
      // (async, bsp, hybrid, real-thread) x [seeds] x chaos phase
      // (fault-free, crash-during-{prepare,commit,apply}) driving LDBC
      // update transactions through the distributed commit protocol, every
      // read wave diffed against a single-worker serial replay of the
      // committed schedule (failing tokens carry `;txn=1;txnphase=...`).
      // The acceptance gate runs 32 seeds, so that is the default here.
      txn_matrix = true;
      opt.num_seeds = 32;
      sub.clear();
      in >> sub;
    }

    if (sub == "replay" || sub == "shrink") {
      std::string token;
      in >> token;
      auto spec = check::ParseReplayToken(token);
      if (!spec.ok()) {
        std::printf("bad token: %s\n", spec.status().ToString().c_str());
        return;
      }
      if (spec.value().txn || txn_matrix) {
        CheckTxnToken(sub, spec.value());
        return;
      }
      if (spec.value().stream || stream_matrix) {
        CheckStreamToken(sub, spec.value());
        return;
      }
      auto reference = check::ComputeReference(factory, opt.max_events);
      if (!reference.ok()) {
        std::printf("reference error: %s\n",
                    reference.status().ToString().c_str());
        return;
      }
      if (sub == "replay") {
        auto cell = check::RunCell(factory, reference.value(), spec.value(), opt);
        if (!cell.ok()) {
          std::printf("replay error: %s\n", cell.status().ToString().c_str());
          return;
        }
        const check::CellReport& r = cell.value();
        std::printf("%s: queries=%lu trips=%lu mismatches=%lu "
                    "explicit_failures=%lu\n",
                    r.ok() ? "PASS" : "FAIL", (unsigned long)r.queries,
                    (unsigned long)r.trips, (unsigned long)r.mismatches,
                    (unsigned long)r.explicit_failures);
        if (!r.detail.empty()) std::printf("  %s\n", r.detail.c_str());
        return;
      }
      auto fails = [&](const check::ReplaySpec& s) {
        auto cell = check::RunCell(factory, reference.value(), s, opt);
        return !cell.ok() || !cell.value().ok();
      };
      check::ShrinkResult r = check::Shrink(spec.value(), fails);
      if (!r.reproduced) {
        std::printf("token does not fail — nothing to shrink "
                    "(%d evaluation(s))\n", r.evaluations);
        return;
      }
      std::printf("minimal repro after %d evaluation(s):\n  replay: %s\n",
                  r.evaluations, r.token.c_str());
      return;
    }

    if (!sub.empty()) {
      char* end = nullptr;
      unsigned long long seeds = std::strtoull(sub.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || seeds == 0) {
        std::printf("usage: check [qos|spill|stream] [seeds] | "
                    "check replay <token> | check shrink <token>\n");
        return;
      }
      opt.num_seeds = seeds;
    }
    if (txn_matrix) {
      check::TxnScenario scenario =
          check::MakeTxnScenario(check::kDefaultTxnScenarioSeed);
      check::TxnDifferentialOptions topt;
      topt.base.num_seeds = opt.num_seeds;
      auto report = check::RunTxnDifferential(scenario, topt);
      if (!report.ok()) {
        std::printf("check txn error: %s\n",
                    report.status().ToString().c_str());
        return;
      }
      std::printf("%s\n", report.value().Summary().c_str());
      return;
    }
    if (stream_matrix) {
      stream::StreamScenario scenario =
          stream::MakeStreamScenario(stream::kDefaultStreamScenarioSeed);
      auto report = stream::RunStreamDifferential(scenario, opt);
      if (!report.ok()) {
        std::printf("check stream error: %s\n",
                    report.status().ToString().c_str());
        return;
      }
      std::printf("%s\n", report.value().Summary().c_str());
      return;
    }
    auto report = check::RunDifferential(factory, opt);
    if (!report.ok()) {
      std::printf("check error: %s\n", report.status().ToString().c_str());
      return;
    }
    std::printf("%s\n", report.value().Summary().c_str());
  }

  /// `check replay|shrink` for a `;stream=1` token: same verbs, but the cell
  /// is a live streaming run diffed against materialized references.
  void CheckStreamToken(const std::string& verb, check::ReplaySpec spec) {
    spec.stream = true;  // `check stream replay <legacy-token>` upgrades too
    stream::StreamScenario scenario =
        stream::MakeStreamScenario(stream::kDefaultStreamScenarioSeed);
    check::DifferentialOptions opt;
    auto reference = stream::ComputeStreamReference(scenario);
    if (!reference.ok()) {
      std::printf("stream reference error: %s\n",
                  reference.status().ToString().c_str());
      return;
    }
    if (verb == "replay") {
      auto cell = stream::RunStreamCell(scenario, reference.value(), spec, opt);
      if (!cell.ok()) {
        std::printf("replay error: %s\n", cell.status().ToString().c_str());
        return;
      }
      const check::CellReport& r = cell.value();
      std::printf("%s: queries=%lu trips=%lu mismatches=%lu "
                  "explicit_failures=%lu\n",
                  r.ok() ? "PASS" : "FAIL", (unsigned long)r.queries,
                  (unsigned long)r.trips, (unsigned long)r.mismatches,
                  (unsigned long)r.explicit_failures);
      if (!r.detail.empty()) std::printf("  %s\n", r.detail.c_str());
      return;
    }
    auto fails = [&](const check::ReplaySpec& s) {
      check::ReplaySpec streamed = s;
      streamed.stream = true;  // shrink the schedule, never the stream flag
      auto cell = stream::RunStreamCell(scenario, reference.value(), streamed, opt);
      return !cell.ok() || !cell.value().ok();
    };
    check::ShrinkResult r = check::Shrink(spec, fails);
    if (!r.reproduced) {
      std::printf("token does not fail — nothing to shrink "
                  "(%d evaluation(s))\n", r.evaluations);
      return;
    }
    std::printf("minimal repro after %d evaluation(s):\n  replay: %s\n",
                r.evaluations, r.token.c_str());
  }

  /// `check replay|shrink` for a `;txn=1` token: the cell drives the update
  /// transactions through the distributed commit protocol under the token's
  /// mode + chaos phase, and every read wave is diffed against the serial
  /// replay of the committed schedule.
  void CheckTxnToken(const std::string& verb, check::ReplaySpec spec) {
    spec.txn = true;  // `check txn replay <legacy-token>` upgrades too
    check::TxnScenario scenario =
        check::MakeTxnScenario(check::kDefaultTxnScenarioSeed);
    check::TxnDifferentialOptions topt;
    if (verb == "replay") {
      auto cell = check::RunTxnCell(scenario, spec, topt);
      if (!cell.ok()) {
        std::printf("replay error: %s\n", cell.status().ToString().c_str());
        return;
      }
      const check::TxnCellReport& r = cell.value();
      std::printf("%s: queries=%lu trips=%lu mismatches=%lu "
                  "explicit_failures=%lu committed=%lu aborted=%lu "
                  "retried=%lu waves=%lu partial_rows=%lu crashes=%lu\n",
                  r.ok() ? "PASS" : "FAIL", (unsigned long)r.base.queries,
                  (unsigned long)r.base.trips,
                  (unsigned long)r.base.mismatches,
                  (unsigned long)r.base.explicit_failures,
                  (unsigned long)r.committed, (unsigned long)r.finally_aborted,
                  (unsigned long)r.retried, (unsigned long)r.waves,
                  (unsigned long)r.partial_visibility_rows,
                  (unsigned long)r.crashes);
      if (!r.base.detail.empty()) std::printf("  %s\n", r.base.detail.c_str());
      return;
    }
    auto fails = [&](const check::ReplaySpec& s) {
      check::ReplaySpec txned = s;
      txned.txn = true;  // shrink the schedule, never the txn flag/phase
      auto cell = check::RunTxnCell(scenario, txned, topt);
      return !cell.ok() || !cell.value().ok();
    };
    check::ShrinkResult r = check::Shrink(spec, fails);
    if (!r.reproduced) {
      std::printf("token does not fail — nothing to shrink "
                  "(%d evaluation(s))\n", r.evaluations);
      return;
    }
    std::printf("minimal repro after %d evaluation(s):\n  replay: %s\n",
                r.evaluations, r.token.c_str());
  }

  void Dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) return;

    if (cmd == "help") {
      std::printf(
          "  load <lj-sim|fs-sim> [scale]   load a power-law graph preset\n"
          "  snb [persons]                  load a synthetic LDBC SNB dataset\n"
          "  khop <start> <k> [limit]       top-limit weighted vertices within k hops\n"
          "  count <start> <k>              distinct vertices within k hops\n"
          "  out <vertex> <edge-label>      list neighbors\n"
          "  pagerank [iters]               PSTM-expressed PageRank, top 10\n"
          "  ic <1..14> / is <1..7>         run an LDBC interactive query (needs snb)\n"
          "  engine <async|bsp|shared>      switch execution engine\n"
          "  bulking <on|off>               toggle traverser bulking (merge\n"
          "                                 equivalent in-flight traversers)\n"
          "  qos <on|off>                   toggle resource governance (admission\n"
          "                                 control + credit flow control + budgets)\n"
          "  spill <on|off>                 toggle the spill tier (cold memoranda\n"
          "                                 and deep task queues park on simulated\n"
          "                                 storage under memory pressure; needs qos)\n"
          "  threads <N>                    run plans on N real worker threads\n"
          "                                 (ThreadCluster; 0 = back to simulator)\n"
          "  cluster <nodes> <workers>      resize the simulated cluster (reload after)\n"
          "  stats                          dataset / cluster summary\n"
          "  metrics                        unified metrics of the last run\n"
          "  check [seeds]                  differential oracle: every engine x\n"
          "                                 [seeds] explored schedules vs a\n"
          "                                 single-worker reference, all\n"
          "                                 invariant checkers attached\n"
          "  check qos [seeds]              the same matrix under the standard\n"
          "                                 QoS stress config (governed cells\n"
          "                                 must match the ungoverned reference)\n"
          "  check spill [seeds]            the same matrix under the spill stress\n"
          "                                 config (memo budget tight enough to\n"
          "                                 force evictions in every cell)\n"
          "  check stream [seeds]           freshness differential: live\n"
          "                                 streaming cells (batched mutations +\n"
          "                                 snapshot + standing queries) vs\n"
          "                                 from-scratch materializations at\n"
          "                                 every commit ts (default 32 seeds)\n"
          "  check txn [seeds]              serializability matrix: every\n"
          "                                 engine (incl. real threads) x\n"
          "                                 [seeds] x crash phase driving LDBC\n"
          "                                 update transactions through the\n"
          "                                 distributed commit protocol, read\n"
          "                                 waves diffed against a serial\n"
          "                                 replay of the committed schedule\n"
          "                                 (default 32 seeds)\n"
          "  check replay <token>           re-run one gdchk1 replay token\n"
          "                                 (`;stream=1` tokens replay as\n"
          "                                 streaming cells, `;txn=1` as\n"
          "                                 transactional cells)\n"
          "  check shrink <token>           minimize a failing replay token\n"
          "  quit\n"
          "flags: --metrics (print metrics after every run), --trace-out FILE\n"
          "       (write the last run's Chrome trace_event JSON)\n");
      return;
    }
    if (cmd == "metrics") {
      if (last_metrics.empty()) {
        std::printf("no runs yet — metrics appear after the first query\n");
      } else {
        std::printf("%s", last_metrics.c_str());
      }
      return;
    }
    if (cmd == "load") {
      std::string preset = "lj-sim";
      double scale = 0.25;
      in >> preset >> scale;
      Load(preset, scale);
      return;
    }
    if (cmd == "snb") {
      uint64_t persons = 800;
      in >> persons;
      LoadSnb(persons);
      return;
    }
    if (cmd == "engine") {
      std::string which;
      in >> which;
      if (which == "async") {
        config.engine = EngineKind::kAsync;
      } else if (which == "bsp") {
        config.engine = EngineKind::kBsp;
      } else if (which == "shared") {
        config.engine = EngineKind::kShared;
      } else {
        std::printf("unknown engine '%s'\n", which.c_str());
        return;
      }
      std::printf("engine = %s\n", EngineKindName(config.engine));
      return;
    }
    if (cmd == "bulking") {
      std::string which;
      in >> which;
      if (which == "on") {
        config.traverser_bulking = true;
      } else if (which == "off") {
        config.traverser_bulking = false;
      } else if (!which.empty()) {
        std::printf("usage: bulking <on|off>\n");
        return;
      }
      std::printf("traverser bulking = %s\n",
                  config.traverser_bulking ? "on" : "off");
      return;
    }
    if (cmd == "qos") {
      std::string which;
      in >> which;
      if (which == "on") {
        config.qos.enabled = true;
      } else if (which == "off") {
        config.qos.enabled = false;
      } else if (!which.empty()) {
        std::printf("usage: qos <on|off>\n");
        return;
      }
      if (config.qos.enabled) {
        std::printf("qos = on (max_concurrent=%u max_queued=%u "
                    "task_budget=%lluB memo_budget=%lluB credit_window=%lluB)\n",
                    config.qos.max_concurrent_queries,
                    config.qos.max_queued_queries,
                    (unsigned long long)config.qos.worker_task_budget_bytes,
                    (unsigned long long)config.qos.worker_memo_budget_bytes,
                    (unsigned long long)config.qos.link_credit_bytes);
      } else {
        std::printf("qos = off\n");
      }
      return;
    }
    if (cmd == "spill") {
      std::string which;
      in >> which;
      if (which == "on") {
        config.qos.spill.enabled = true;
      } else if (which == "off") {
        config.qos.spill.enabled = false;
      } else if (!which.empty()) {
        std::printf("usage: spill <on|off>\n");
        return;
      }
      if (config.qos.spill.enabled) {
        std::printf("spill = on (capacity=%lluB memo watermark %.2f/%.2f, "
                    "task watermark %.2f/%.2f, reload batch %u)%s\n",
                    (unsigned long long)config.qos.spill.capacity_bytes,
                    config.qos.spill.memo_spill_watermark,
                    config.qos.spill.memo_low_watermark,
                    config.qos.spill.task_spill_watermark,
                    config.qos.spill.task_low_watermark,
                    config.qos.spill.task_reload_batch,
                    config.qos.enabled
                        ? ""
                        : " — inert until `qos on` (the tier enforces the "
                          "qos budgets)");
      } else {
        std::printf("spill = off\n");
      }
      return;
    }
    if (cmd == "threads") {
      uint32_t n = real_threads;
      in >> n;
      real_threads = n;
      if (real_threads > 0) {
        std::printf("threads = %u: plans run on a real-thread ThreadCluster "
                    "(partition p owned by thread p %% %u)\n",
                    real_threads, real_threads);
      } else {
        std::printf("threads = 0: plans run on the simulated cluster\n");
      }
      return;
    }
    if (cmd == "cluster") {
      uint32_t nodes = config.num_nodes, workers = config.workers_per_node;
      in >> nodes >> workers;
      config.num_nodes = std::max(1u, nodes);
      config.workers_per_node = std::max(1u, workers);
      std::printf("cluster = %u nodes x %u workers; reload the dataset to "
                  "repartition\n",
                  config.num_nodes, config.workers_per_node);
      graph.reset();
      snb.reset();
      return;
    }
    if (cmd == "stats") {
      Stats();
      return;
    }
    if (cmd == "check") {
      Check(in);
      return;
    }
    if (graph == nullptr) {
      std::printf("no graph loaded — try 'load lj-sim' or 'snb 800'\n");
      return;
    }
    if (cmd == "khop") {
      VertexId start = 0;
      int k = 2;
      size_t limit = 10;
      in >> start >> k >> limit;
      PropKeyId weight = schema->PropKey("weight");
      RunPlan(Traversal(graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), true)
                  .Project({Operand::VertexIdOp(), Operand::Property(weight)})
                  .OrderByLimit({{1, false}, {0, true}}, limit)
                  .Build());
      return;
    }
    if (cmd == "count") {
      VertexId start = 0;
      int k = 2;
      in >> start >> k;
      RunPlan(Traversal(graph)
                  .V({start})
                  .RepeatOut("link", static_cast<uint16_t>(k), true)
                  .Count()
                  .Build());
      return;
    }
    if (cmd == "out") {
      VertexId v = 0;
      std::string label = "link";
      in >> v >> label;
      RunPlan(Traversal(graph).V({v}).Out(label).Emit({Operand::VertexIdOp()}).Build());
      return;
    }
    if (cmd == "pagerank") {
      int iters = 3;
      in >> iters;
      auto plan = BuildPageRankPlan(graph, "node", "link", iters);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
        return;
      }
      SimCluster cluster(config, graph);
      auto res = cluster.Run(plan.TakeValue());
      if (!res.ok()) {
        std::printf("run error: %s\n", res.status().ToString().c_str());
        return;
      }
      auto rows = res.value().rows;
      std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        return a[1].ToDouble() > b[1].ToDouble();
      });
      if (rows.size() > 10) rows.resize(10);
      QueryResult top = res.value();
      top.rows = rows;
      PrintRows(top);
      Observe(cluster);
      return;
    }
    if (cmd == "ic" || cmd == "is") {
      if (snb == nullptr) {
        std::printf("'%s' needs an SNB dataset — run 'snb 800' first\n", cmd.c_str());
        return;
      }
      int number = 1;
      in >> number;
      SnbParamGen gen(*snb, next_param_seed++);
      SnbParams p = gen.Next();
      RunPlan(cmd == "ic" ? BuildInteractiveComplex(number, *snb, p)
                          : BuildInteractiveShort(number, *snb, p));
      return;
    }
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
  }
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics") {
      shell.show_metrics = true;
    } else if (arg == "--trace-out" && i + 1 < argc) {
      shell.trace_out = argv[++i];
      shell.config.trace = true;  // record spans; pure observation
    } else {
      std::fprintf(stderr,
                   "usage: graphdance_cli [--metrics] [--trace-out FILE]\n");
      return 2;
    }
  }
  std::printf("GraphDance interactive shell — 'help' for commands.\n");
  std::string line;
  while (true) {
    std::printf("gd> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == "quit" || line == "exit") break;
    shell.Dispatch(line);
  }
  return 0;
}
