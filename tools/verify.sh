#!/usr/bin/env bash
# Full tier-1 verification matrix. Run from the repository root:
#
#   tools/verify.sh            # everything (release, ASan/UBSan, Debug, obs, check, qos, spill, stream, txn)
#   tools/verify.sh release    # just the release build + tests
#
# Stages:
#   release — default (NDEBUG) build, full ctest suite
#   asan    — -DSANITIZE=ON (AddressSanitizer + UBSan), full ctest suite
#   debug   — -DCMAKE_BUILD_TYPE=Debug (asserts live), runs the death tests
#   obs     — observability suite alone (ctest -L obs) in the release tree
#   check   — simulation-checker suite alone (ctest -L check: invariant
#             checkers, schedule exploration, differential oracle, shrinker,
#             serde/weight property tests) in the release tree
#   qos     — resource-governance suite alone (ctest -L qos: admission /
#             flow-control / budget tests, credit + admission property tests,
#             64-seed governed+faulted differential matrix) in the release
#             tree, then the gated bench_overload curve
#   spill   — spill-tier suite alone (ctest -L spill: off-switch byte
#             identity, pressure state machine, spilled differential matrix)
#             in the release tree, then the gated bench_spill pressure curve
#   stream  — streaming-ingest suite alone (ctest -L stream: snapshot
#             identity vs materialized references across engines, standing
#             cumulative-emission identity, off-switch byte identity,
#             crash-mid-batch atomicity, compaction pin guard) in the
#             release tree, then the gated bench_streaming freshness curve
#   txn     — distributed-transaction suite alone (ctest -L txn: cross-
#             partition commit atomicity, no-wait conflict aborts, crash-
#             during-{prepare,commit,apply} all-or-nothing visibility, the
#             serializability oracle matrix with planted-corruption
#             non-vacuity, lock-table property tests, replay-token round
#             trips) in the release tree, then the gated bench_txn
#             contention/chaos sweep (zero oracle trips, zero
#             partial-visibility rows)
#   tsan    — -DSANITIZE=thread (ThreadSanitizer) build of the real-thread
#             runtime, then the rt suite (ctest -L rt: MPSC inbox contention
#             tests + the ThreadCluster differential matrix), the streaming
#             suite (ctest -L stream) and the transaction suite (ctest -L
#             txn: real-thread read waves between phased commits) under TSan
#   threads — real-thread scalability smoke (bench_threads) in the release
#             tree: rows must be byte-identical at every thread count (hard
#             gate); the monotone/1.5x-speedup gates are enforced by the
#             binary only on hosts with >= 4 hardware threads. Writes
#             BENCH_threads.json.
#   perf    — wall-clock smoke (bench_wallclock): runs the multi-workload
#             throughput suite in the release tree and writes
#             BENCH_wallclock.json. The binary gates determinism (it exits
#             non-zero when a workload's bulking-on and bulking-off row
#             fingerprints disagree) but the tasks/s numbers themselves are
#             machine-dependent and not asserted — track them across runs.
#
# Each stage uses its own build directory (build/, build-asan/, build-debug/,
# build-tsan/) so they never clobber one another's caches.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
STAGES="${1:-all}"

run_stage() {
  local name="$1" dir="$2"
  shift 2
  echo "==== [$name] configure + build ($dir) ===="
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$name] ctest ===="
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

if [[ "$STAGES" == "all" || "$STAGES" == "release" ]]; then
  run_stage release build
fi

if [[ "$STAGES" == "all" || "$STAGES" == "asan" ]]; then
  run_stage asan build-asan -DSANITIZE=ON
fi

if [[ "$STAGES" == "all" || "$STAGES" == "debug" ]]; then
  run_stage debug build-debug -DCMAKE_BUILD_TYPE=Debug
fi

if [[ "$STAGES" == "all" || "$STAGES" == "obs" ]]; then
  echo "==== [obs] ctest -L obs (release tree) ===="
  ctest --test-dir build -L obs --output-on-failure -j "$JOBS"
fi

if [[ "$STAGES" == "all" || "$STAGES" == "check" ]]; then
  echo "==== [check] ctest -L check (release tree) ===="
  ctest --test-dir build -L check --output-on-failure -j "$JOBS"
fi

if [[ "$STAGES" == "all" || "$STAGES" == "qos" ]]; then
  echo "==== [qos] ctest -L qos (release tree) ===="
  ctest --test-dir build -L qos --output-on-failure -j "$JOBS"
  echo "==== [qos] bench_overload gates ===="
  cmake --build build --target bench_overload -j "$JOBS"
  ./build/bench/bench_overload
fi

if [[ "$STAGES" == "all" || "$STAGES" == "spill" ]]; then
  echo "==== [spill] ctest -L spill (release tree) ===="
  ctest --test-dir build -L spill --output-on-failure -j "$JOBS"
  echo "==== [spill] bench_spill gates ===="
  cmake --build build --target bench_spill -j "$JOBS"
  ./build/bench/bench_spill
fi

if [[ "$STAGES" == "all" || "$STAGES" == "stream" ]]; then
  echo "==== [stream] ctest -L stream (release tree) ===="
  ctest --test-dir build -L stream --output-on-failure -j "$JOBS"
  echo "==== [stream] bench_streaming gates ===="
  cmake --build build --target bench_streaming -j "$JOBS"
  ./build/bench/bench_streaming
fi

if [[ "$STAGES" == "all" || "$STAGES" == "txn" ]]; then
  echo "==== [txn] ctest -L txn (release tree) ===="
  ctest --test-dir build -L txn --output-on-failure -j "$JOBS"
  echo "==== [txn] bench_txn gates ===="
  cmake --build build --target bench_txn -j "$JOBS"
  ./build/bench/bench_txn
fi

if [[ "$STAGES" == "all" || "$STAGES" == "tsan" ]]; then
  echo "==== [tsan] configure + build rt + stream + txn suites (build-tsan) ===="
  cmake -B build-tsan -S . -DSANITIZE=thread >/dev/null
  cmake --build build-tsan --target rt_test stream_test txn_test prop_test -j "$JOBS"
  echo "==== [tsan] ctest -L rt -L stream -L txn under ThreadSanitizer ===="
  ctest --test-dir build-tsan -L 'rt|stream|txn' --output-on-failure -j "$JOBS"
fi

if [[ "$STAGES" == "all" || "$STAGES" == "threads" ]]; then
  echo "==== [threads] bench_threads gates (release tree) ===="
  cmake --build build --target bench_threads -j "$JOBS"
  ./build/bench/bench_threads
fi

if [[ "$STAGES" == "all" || "$STAGES" == "perf" ]]; then
  echo "==== [perf] bench_wallclock smoke (release tree) ===="
  cmake --build build --target bench_wallclock -j "$JOBS"
  ./build/bench/bench_wallclock
fi

echo "==== verify: all requested stages passed ===="
