file(REMOVE_RECURSE
  "CMakeFiles/graphdance_cli.dir/graphdance_cli.cc.o"
  "CMakeFiles/graphdance_cli.dir/graphdance_cli.cc.o.d"
  "graphdance_cli"
  "graphdance_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphdance_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
