# Empty dependencies file for graphdance_cli.
# This may be replaced when dependencies are built.
