file(REMOVE_RECURSE
  "CMakeFiles/bench_wallclock.dir/bench_wallclock.cc.o"
  "CMakeFiles/bench_wallclock.dir/bench_wallclock.cc.o.d"
  "bench_wallclock"
  "bench_wallclock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wallclock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
