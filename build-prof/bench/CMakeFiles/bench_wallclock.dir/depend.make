# Empty dependencies file for bench_wallclock.
# This may be replaced when dependencies are built.
