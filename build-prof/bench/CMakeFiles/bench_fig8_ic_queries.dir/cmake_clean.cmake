file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ic_queries.dir/bench_fig8_ic_queries.cc.o"
  "CMakeFiles/bench_fig8_ic_queries.dir/bench_fig8_ic_queries.cc.o.d"
  "bench_fig8_ic_queries"
  "bench_fig8_ic_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ic_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
