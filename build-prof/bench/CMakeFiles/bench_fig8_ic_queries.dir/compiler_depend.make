# Empty compiler generated dependencies file for bench_fig8_ic_queries.
# This may be replaced when dependencies are built.
