file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bulking.dir/bench_ablation_bulking.cc.o"
  "CMakeFiles/bench_ablation_bulking.dir/bench_ablation_bulking.cc.o.d"
  "bench_ablation_bulking"
  "bench_ablation_bulking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bulking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
