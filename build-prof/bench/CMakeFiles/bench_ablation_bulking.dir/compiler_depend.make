# Empty compiler generated dependencies file for bench_ablation_bulking.
# This may be replaced when dependencies are built.
