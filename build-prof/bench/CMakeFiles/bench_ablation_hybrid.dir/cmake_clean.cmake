file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hybrid.dir/bench_ablation_hybrid.cc.o"
  "CMakeFiles/bench_ablation_hybrid.dir/bench_ablation_hybrid.cc.o.d"
  "bench_ablation_hybrid"
  "bench_ablation_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
