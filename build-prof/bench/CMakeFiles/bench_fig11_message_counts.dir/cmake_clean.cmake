file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_message_counts.dir/bench_fig11_message_counts.cc.o"
  "CMakeFiles/bench_fig11_message_counts.dir/bench_fig11_message_counts.cc.o.d"
  "bench_fig11_message_counts"
  "bench_fig11_message_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_message_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
