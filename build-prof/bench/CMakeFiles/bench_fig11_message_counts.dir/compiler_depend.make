# Empty compiler generated dependencies file for bench_fig11_message_counts.
# This may be replaced when dependencies are built.
