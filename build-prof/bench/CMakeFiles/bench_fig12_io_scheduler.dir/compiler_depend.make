# Empty compiler generated dependencies file for bench_fig12_io_scheduler.
# This may be replaced when dependencies are built.
