file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_io_scheduler.dir/bench_fig12_io_scheduler.cc.o"
  "CMakeFiles/bench_fig12_io_scheduler.dir/bench_fig12_io_scheduler.cc.o.d"
  "bench_fig12_io_scheduler"
  "bench_fig12_io_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_io_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
