# Empty dependencies file for bench_fig7_mixed_workload.
# This may be replaced when dependencies are built.
