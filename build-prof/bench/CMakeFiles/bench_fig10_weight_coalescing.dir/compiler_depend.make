# Empty compiler generated dependencies file for bench_fig10_weight_coalescing.
# This may be replaced when dependencies are built.
