file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_weight_coalescing.dir/bench_fig10_weight_coalescing.cc.o"
  "CMakeFiles/bench_fig10_weight_coalescing.dir/bench_fig10_weight_coalescing.cc.o.d"
  "bench_fig10_weight_coalescing"
  "bench_fig10_weight_coalescing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_weight_coalescing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
