file(REMOVE_RECURSE
  "CMakeFiles/bench_single_vs_distributed.dir/bench_single_vs_distributed.cc.o"
  "CMakeFiles/bench_single_vs_distributed.dir/bench_single_vs_distributed.cc.o.d"
  "bench_single_vs_distributed"
  "bench_single_vs_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_single_vs_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
