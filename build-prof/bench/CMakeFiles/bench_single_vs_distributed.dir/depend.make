# Empty dependencies file for bench_single_vs_distributed.
# This may be replaced when dependencies are built.
