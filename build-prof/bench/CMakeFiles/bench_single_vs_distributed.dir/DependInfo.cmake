
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_single_vs_distributed.cc" "bench/CMakeFiles/bench_single_vs_distributed.dir/bench_single_vs_distributed.cc.o" "gcc" "bench/CMakeFiles/bench_single_vs_distributed.dir/bench_single_vs_distributed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/ldbc/CMakeFiles/gd_ldbc.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/query/CMakeFiles/gd_query.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/txn/CMakeFiles/gd_txn.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/runtime/CMakeFiles/gd_runtime.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/obs/CMakeFiles/gd_obs.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/qos/CMakeFiles/gd_qos.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/check/CMakeFiles/gd_check.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/pstm/CMakeFiles/gd_pstm.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/graph/CMakeFiles/gd_graph.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/sim/CMakeFiles/gd_sim.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/common/CMakeFiles/gd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
