# Empty dependencies file for bench_spill.
# This may be replaced when dependencies are built.
