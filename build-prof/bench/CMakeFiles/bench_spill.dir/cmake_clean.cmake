file(REMOVE_RECURSE
  "CMakeFiles/bench_spill.dir/bench_spill.cc.o"
  "CMakeFiles/bench_spill.dir/bench_spill.cc.o.d"
  "bench_spill"
  "bench_spill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
