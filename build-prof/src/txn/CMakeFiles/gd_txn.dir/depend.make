# Empty dependencies file for gd_txn.
# This may be replaced when dependencies are built.
