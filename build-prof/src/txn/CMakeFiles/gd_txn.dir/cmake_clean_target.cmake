file(REMOVE_RECURSE
  "libgd_txn.a"
)
