file(REMOVE_RECURSE
  "CMakeFiles/gd_txn.dir/txn_manager.cc.o"
  "CMakeFiles/gd_txn.dir/txn_manager.cc.o.d"
  "libgd_txn.a"
  "libgd_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
