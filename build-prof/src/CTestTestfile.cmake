# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-prof/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("graph")
subdirs("net")
subdirs("pstm")
subdirs("obs")
subdirs("txn")
subdirs("qos")
subdirs("check")
subdirs("runtime")
subdirs("query")
subdirs("analytics")
subdirs("ldbc")
