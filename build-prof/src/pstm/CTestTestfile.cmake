# CMake generated Testfile for 
# Source directory: /root/repo/src/pstm
# Build directory: /root/repo/build-prof/src/pstm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
