
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pstm/plan.cc" "src/pstm/CMakeFiles/gd_pstm.dir/plan.cc.o" "gcc" "src/pstm/CMakeFiles/gd_pstm.dir/plan.cc.o.d"
  "/root/repo/src/pstm/steps.cc" "src/pstm/CMakeFiles/gd_pstm.dir/steps.cc.o" "gcc" "src/pstm/CMakeFiles/gd_pstm.dir/steps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-prof/src/common/CMakeFiles/gd_common.dir/DependInfo.cmake"
  "/root/repo/build-prof/src/graph/CMakeFiles/gd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
