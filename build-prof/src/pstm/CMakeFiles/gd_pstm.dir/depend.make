# Empty dependencies file for gd_pstm.
# This may be replaced when dependencies are built.
