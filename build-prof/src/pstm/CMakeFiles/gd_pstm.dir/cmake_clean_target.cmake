file(REMOVE_RECURSE
  "libgd_pstm.a"
)
