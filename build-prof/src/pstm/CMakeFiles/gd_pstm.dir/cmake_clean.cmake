file(REMOVE_RECURSE
  "CMakeFiles/gd_pstm.dir/plan.cc.o"
  "CMakeFiles/gd_pstm.dir/plan.cc.o.d"
  "CMakeFiles/gd_pstm.dir/steps.cc.o"
  "CMakeFiles/gd_pstm.dir/steps.cc.o.d"
  "libgd_pstm.a"
  "libgd_pstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_pstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
