# Empty dependencies file for gd_graph.
# This may be replaced when dependencies are built.
