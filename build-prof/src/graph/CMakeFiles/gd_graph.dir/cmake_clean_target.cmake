file(REMOVE_RECURSE
  "libgd_graph.a"
)
