file(REMOVE_RECURSE
  "CMakeFiles/gd_graph.dir/generators.cc.o"
  "CMakeFiles/gd_graph.dir/generators.cc.o.d"
  "CMakeFiles/gd_graph.dir/graph.cc.o"
  "CMakeFiles/gd_graph.dir/graph.cc.o.d"
  "libgd_graph.a"
  "libgd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
