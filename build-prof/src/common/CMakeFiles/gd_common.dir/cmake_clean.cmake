file(REMOVE_RECURSE
  "CMakeFiles/gd_common.dir/logging.cc.o"
  "CMakeFiles/gd_common.dir/logging.cc.o.d"
  "CMakeFiles/gd_common.dir/status.cc.o"
  "CMakeFiles/gd_common.dir/status.cc.o.d"
  "CMakeFiles/gd_common.dir/value.cc.o"
  "CMakeFiles/gd_common.dir/value.cc.o.d"
  "libgd_common.a"
  "libgd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
