# Empty dependencies file for gd_common.
# This may be replaced when dependencies are built.
