file(REMOVE_RECURSE
  "libgd_common.a"
)
