# Empty dependencies file for gd_sim.
# This may be replaced when dependencies are built.
