file(REMOVE_RECURSE
  "libgd_sim.a"
)
