file(REMOVE_RECURSE
  "CMakeFiles/gd_sim.dir/fault.cc.o"
  "CMakeFiles/gd_sim.dir/fault.cc.o.d"
  "libgd_sim.a"
  "libgd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
