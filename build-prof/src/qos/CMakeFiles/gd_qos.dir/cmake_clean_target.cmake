file(REMOVE_RECURSE
  "libgd_qos.a"
)
