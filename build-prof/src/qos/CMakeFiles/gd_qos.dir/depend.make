# Empty dependencies file for gd_qos.
# This may be replaced when dependencies are built.
