file(REMOVE_RECURSE
  "CMakeFiles/gd_qos.dir/admission.cc.o"
  "CMakeFiles/gd_qos.dir/admission.cc.o.d"
  "libgd_qos.a"
  "libgd_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
