# Empty dependencies file for gd_check_driver.
# This may be replaced when dependencies are built.
