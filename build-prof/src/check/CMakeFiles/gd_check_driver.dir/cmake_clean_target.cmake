file(REMOVE_RECURSE
  "libgd_check_driver.a"
)
