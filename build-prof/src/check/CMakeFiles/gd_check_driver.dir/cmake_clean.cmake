file(REMOVE_RECURSE
  "CMakeFiles/gd_check_driver.dir/oracle.cc.o"
  "CMakeFiles/gd_check_driver.dir/oracle.cc.o.d"
  "CMakeFiles/gd_check_driver.dir/shrink.cc.o"
  "CMakeFiles/gd_check_driver.dir/shrink.cc.o.d"
  "libgd_check_driver.a"
  "libgd_check_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_check_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
