# Empty dependencies file for gd_check.
# This may be replaced when dependencies are built.
