file(REMOVE_RECURSE
  "CMakeFiles/gd_check.dir/invariants.cc.o"
  "CMakeFiles/gd_check.dir/invariants.cc.o.d"
  "libgd_check.a"
  "libgd_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
