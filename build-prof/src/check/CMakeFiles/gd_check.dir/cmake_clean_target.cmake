file(REMOVE_RECURSE
  "libgd_check.a"
)
