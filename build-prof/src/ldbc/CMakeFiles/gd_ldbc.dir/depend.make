# Empty dependencies file for gd_ldbc.
# This may be replaced when dependencies are built.
