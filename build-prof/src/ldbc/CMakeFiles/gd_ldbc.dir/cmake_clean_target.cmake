file(REMOVE_RECURSE
  "libgd_ldbc.a"
)
