file(REMOVE_RECURSE
  "CMakeFiles/gd_ldbc.dir/driver.cc.o"
  "CMakeFiles/gd_ldbc.dir/driver.cc.o.d"
  "CMakeFiles/gd_ldbc.dir/reference.cc.o"
  "CMakeFiles/gd_ldbc.dir/reference.cc.o.d"
  "CMakeFiles/gd_ldbc.dir/snb_generator.cc.o"
  "CMakeFiles/gd_ldbc.dir/snb_generator.cc.o.d"
  "CMakeFiles/gd_ldbc.dir/snb_queries.cc.o"
  "CMakeFiles/gd_ldbc.dir/snb_queries.cc.o.d"
  "libgd_ldbc.a"
  "libgd_ldbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_ldbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
