file(REMOVE_RECURSE
  "libgd_obs.a"
)
