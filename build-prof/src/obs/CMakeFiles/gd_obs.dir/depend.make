# Empty dependencies file for gd_obs.
# This may be replaced when dependencies are built.
