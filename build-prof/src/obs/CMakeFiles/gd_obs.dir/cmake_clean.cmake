file(REMOVE_RECURSE
  "CMakeFiles/gd_obs.dir/metrics.cc.o"
  "CMakeFiles/gd_obs.dir/metrics.cc.o.d"
  "CMakeFiles/gd_obs.dir/trace.cc.o"
  "CMakeFiles/gd_obs.dir/trace.cc.o.d"
  "libgd_obs.a"
  "libgd_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
