# Empty dependencies file for gd_query.
# This may be replaced when dependencies are built.
