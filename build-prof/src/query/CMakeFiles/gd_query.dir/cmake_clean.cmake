file(REMOVE_RECURSE
  "CMakeFiles/gd_query.dir/gremlin.cc.o"
  "CMakeFiles/gd_query.dir/gremlin.cc.o.d"
  "CMakeFiles/gd_query.dir/planner.cc.o"
  "CMakeFiles/gd_query.dir/planner.cc.o.d"
  "libgd_query.a"
  "libgd_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
