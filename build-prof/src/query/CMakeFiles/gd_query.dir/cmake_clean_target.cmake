file(REMOVE_RECURSE
  "libgd_query.a"
)
