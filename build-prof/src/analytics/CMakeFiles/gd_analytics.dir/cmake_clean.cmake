file(REMOVE_RECURSE
  "CMakeFiles/gd_analytics.dir/analytics.cc.o"
  "CMakeFiles/gd_analytics.dir/analytics.cc.o.d"
  "libgd_analytics.a"
  "libgd_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
