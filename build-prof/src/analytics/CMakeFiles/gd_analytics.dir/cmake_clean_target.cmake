file(REMOVE_RECURSE
  "libgd_analytics.a"
)
