# Empty compiler generated dependencies file for gd_analytics.
# This may be replaced when dependencies are built.
