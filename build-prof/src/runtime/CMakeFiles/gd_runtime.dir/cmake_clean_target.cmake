file(REMOVE_RECURSE
  "libgd_runtime.a"
)
