file(REMOVE_RECURSE
  "CMakeFiles/gd_runtime.dir/sim_cluster.cc.o"
  "CMakeFiles/gd_runtime.dir/sim_cluster.cc.o.d"
  "libgd_runtime.a"
  "libgd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
