# Empty dependencies file for gd_runtime.
# This may be replaced when dependencies are built.
