# Empty dependencies file for prop_test.
# This may be replaced when dependencies are built.
