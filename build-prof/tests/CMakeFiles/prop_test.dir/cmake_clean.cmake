file(REMOVE_RECURSE
  "CMakeFiles/prop_test.dir/prop_test.cc.o"
  "CMakeFiles/prop_test.dir/prop_test.cc.o.d"
  "prop_test"
  "prop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
