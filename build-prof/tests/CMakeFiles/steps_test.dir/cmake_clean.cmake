file(REMOVE_RECURSE
  "CMakeFiles/steps_test.dir/steps_test.cc.o"
  "CMakeFiles/steps_test.dir/steps_test.cc.o.d"
  "steps_test"
  "steps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
