# Empty compiler generated dependencies file for steps_test.
# This may be replaced when dependencies are built.
