file(REMOVE_RECURSE
  "CMakeFiles/spill_test.dir/spill_test.cc.o"
  "CMakeFiles/spill_test.dir/spill_test.cc.o.d"
  "spill_test"
  "spill_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
