# Empty dependencies file for pstm_test.
# This may be replaced when dependencies are built.
