file(REMOVE_RECURSE
  "CMakeFiles/pstm_test.dir/pstm_test.cc.o"
  "CMakeFiles/pstm_test.dir/pstm_test.cc.o.d"
  "pstm_test"
  "pstm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
