# Empty compiler generated dependencies file for bulking_test.
# This may be replaced when dependencies are built.
