file(REMOVE_RECURSE
  "CMakeFiles/bulking_test.dir/bulking_test.cc.o"
  "CMakeFiles/bulking_test.dir/bulking_test.cc.o.d"
  "bulking_test"
  "bulking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
