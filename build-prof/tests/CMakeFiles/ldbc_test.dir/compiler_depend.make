# Empty compiler generated dependencies file for ldbc_test.
# This may be replaced when dependencies are built.
