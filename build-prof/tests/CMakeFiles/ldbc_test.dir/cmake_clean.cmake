file(REMOVE_RECURSE
  "CMakeFiles/ldbc_test.dir/ldbc_test.cc.o"
  "CMakeFiles/ldbc_test.dir/ldbc_test.cc.o.d"
  "ldbc_test"
  "ldbc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
