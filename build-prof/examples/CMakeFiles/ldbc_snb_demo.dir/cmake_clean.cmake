file(REMOVE_RECURSE
  "CMakeFiles/ldbc_snb_demo.dir/ldbc_snb_demo.cpp.o"
  "CMakeFiles/ldbc_snb_demo.dir/ldbc_snb_demo.cpp.o.d"
  "ldbc_snb_demo"
  "ldbc_snb_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldbc_snb_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
