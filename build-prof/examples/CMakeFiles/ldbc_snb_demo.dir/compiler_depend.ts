# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ldbc_snb_demo.
