# Empty dependencies file for ldbc_snb_demo.
# This may be replaced when dependencies are built.
