# Empty compiler generated dependencies file for offline_analytics.
# This may be replaced when dependencies are built.
