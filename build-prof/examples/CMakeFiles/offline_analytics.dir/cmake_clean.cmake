file(REMOVE_RECURSE
  "CMakeFiles/offline_analytics.dir/offline_analytics.cpp.o"
  "CMakeFiles/offline_analytics.dir/offline_analytics.cpp.o.d"
  "offline_analytics"
  "offline_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
