# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pstm_test "/root/repo/build/tests/pstm_test")
set_tests_properties(pstm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(runtime_test "/root/repo/build/tests/runtime_test")
set_tests_properties(runtime_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(txn_test "/root/repo/build/tests/txn_test")
set_tests_properties(txn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ldbc_test "/root/repo/build/tests/ldbc_test")
set_tests_properties(ldbc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(query_test "/root/repo/build/tests/query_test")
set_tests_properties(query_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analytics_test "/root/repo/build/tests/analytics_test")
set_tests_properties(analytics_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(steps_test "/root/repo/build/tests/steps_test")
set_tests_properties(steps_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hybrid_test "/root/repo/build/tests/hybrid_test")
set_tests_properties(hybrid_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;gd_add_test;/root/repo/tests/CMakeLists.txt;0;")
